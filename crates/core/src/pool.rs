//! Resilient shared execution layer: a leasing [`WorkspacePool`] with a
//! shared [`PlanCache`], panic isolation, admission control, and per-call
//! deadlines.
//!
//! The paper's tiny-workspace property — `(Z−1)·|∇W|` per problem — makes
//! BFC state small enough to *pool*: a handful of [`Workspace`] arenas can
//! serve every layer of a training loop, or every request of a serving
//! process, instead of one arena per caller. This module is that shared
//! layer, built so shared state survives the three things that kill naive
//! pools:
//!
//! * **Panics** — [`ExecHandle::run`] executes the planned BFC under
//!   `catch_unwind`. A panic inside the fused block loop (the vendored
//!   rayon substrate resumes worker panics on the caller) becomes a typed
//!   [`WinrsError::ExecutionPanicked`]; the half-written `∇W` is dropped
//!   during unwind and the leased workspace is **poisoned**: discarded and
//!   rebuilt fresh before the slot is leasable again, so no later caller
//!   can observe a partial write. Lease return is panic-driven too —
//!   [`Lease`]'s `Drop` detects unwinding and self-poisons, so even a
//!   panic *between* lease and execution cannot leak a dirty arena.
//! * **Exhaustion** — the pool holds a fixed number of slots. A lease
//!   request waits on a condvar up to a configurable budget, then fails
//!   with typed [`WinrsError::PoolExhausted`] backpressure instead of
//!   queueing unboundedly.
//! * **Slowness** — an optional per-call deadline turns an over-budget
//!   call into [`WinrsError::DeadlineExceeded`], which the dispatcher (the
//!   PR 1 fallback policy layer) degrades down the ladder WinRS →
//!   GEMM-BFC → direct. Every rung is charged against the *one* budget
//!   opened when the call entered [`ExecHandle::run`]: a rung may start
//!   only while that window is still open, so a call can overrun its
//!   deadline by at most the runtime of the rung in flight (there is no
//!   mid-run cancellation) — never by rungs× the window. A budget that
//!   expires before a substitute rung starts surfaces as
//!   `DeadlineExceeded` naming the rung reached, so a serving caller gets
//!   a fast typed refusal instead of a late answer.
//!
//! Pool health (leases, waits, poisonings, rebuilds, exhaustions,
//! degradations) is a [`PoolStats`] snapshot stamped into every
//! [`ExecutionReport`], flowing through the same observability path as
//! [`crate::metrics::PhaseTimings`].
//!
//! The whole layer is driven by the seeded chaos harness in
//! [`crate::faults`]: deterministic campaigns inject panics, feigned slot
//! exhaustion, allocation-budget failures and artificial slowness at named
//! sites, and the chaos suite asserts every campaign ends in either a
//! bitwise-correct `∇W` or a typed error with the pool back to a clean,
//! fully-leasable state. Interleaving-level properties (no double-lease,
//! no dirty re-issue, waiter wakeup) are checked exhaustively by the loom
//! models in `tests/pool_models.rs`.

use crate::cache::PlanCache;
use crate::config::Precision;
use crate::error::{Violation, WinrsError};
use crate::fallback::{self, ExecutionReport, FallbackPolicy, NumericGuard};
use crate::metrics::PoolStats;
use crate::plan::WinRsPlan;
use crate::sync::{Condvar, Mutex};
use crate::tuner::{
    AlgoChoice, TuneDbWarning, Tuner, TunerConfig, TunerCounters, TunerDecision,
};
use crate::workspace::{Workspace, WorkspaceLayout};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use winrs_conv::ConvShape;
use winrs_gpu_sim::DeviceSpec;
use winrs_tensor::Tensor4;

/// Configuration for a [`WorkspacePool`].
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Number of workspace slots (concurrent leases). Clamped to ≥ 1.
    pub slots: usize,
    /// How long a lease request may wait for a slot before failing with
    /// [`WinrsError::PoolExhausted`].
    pub max_wait: Duration,
    /// Capacity of the shared [`PlanCache`] *and* of the tuner's decision
    /// cache — both per-shape caches scale with this one knob.
    pub plan_capacity: usize,
    /// Autotuner policy (explore budget, WinRS hysteresis margin). The
    /// tuner's decision-cache capacity is overridden by `plan_capacity`.
    pub tuner: TunerConfig,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            // One lease per concurrent BFC *call* (each call parallelises
            // internally); four covers a training loop plus a couple of
            // background verifiers without over-provisioning arenas.
            slots: 4,
            max_wait: Duration::from_millis(100),
            plan_capacity: crate::cache::DEFAULT_PLAN_CACHE_CAPACITY,
            tuner: TunerConfig::default(),
        }
    }
}

/// One pooled workspace plus its rebuild generation (bumped every time the
/// slot is poisoned and rebuilt — lets tests prove a dirty arena was
/// discarded, not recycled).
struct Slot {
    ws: Workspace,
    generation: u64,
}

/// Mutable pool state, all under one mutex. The counters are plain
/// integers rather than atomics on purpose: every update already happens
/// inside the state lock, and keeping them there makes the loom models
/// tractable (no extra scheduling points) while guaranteeing snapshot
/// consistency.
struct PoolState {
    free: Vec<Slot>,
    in_use: usize,
    leases: u64,
    waits: u64,
    poisonings: u64,
    rebuilds: u64,
    exhausted: u64,
    degradations: u64,
    cache_poisonings: u64,
}

/// A process-wide pool of reusable [`Workspace`] arenas with lease
/// semantics, plus the shared [`PlanCache`] the leased executions use.
///
/// [`WorkspacePool::lease`] hands out an *exclusive* workspace sized by
/// `Workspace::ensure`; the [`Lease`] returns it on drop, rebuilding it
/// fresh first if the leaseholder panicked (or called [`Lease::poison`]).
/// See the module docs for the full resilience model.
pub struct WorkspacePool {
    state: Mutex<PoolState>,
    /// Signalled whenever a slot returns to `free`.
    available: Condvar,
    cfg: PoolConfig,
    plans: Mutex<PlanCache>,
    /// The dispatch authority: ranks WinRS against its substitutes per
    /// shape/precision/device and caches the committed choice. Leaf lock —
    /// never taken while holding `plans` or `state`.
    tuner: Mutex<Tuner>,
}

impl WorkspacePool {
    /// Build a pool with `cfg.slots` fresh workspaces.
    pub fn new(cfg: PoolConfig) -> Arc<WorkspacePool> {
        // Warm the one-time SIMD width probe here, off the hot path, so the
        // first leased execution never pays for CPUID sniffing and the
        // tuner's `device_key` sees a settled detection result.
        let _ = winrs_gemm::micro::detected_width();
        let slots = cfg.slots.max(1);
        let free = (0..slots)
            .map(|_| Slot {
                ws: Workspace::new(),
                generation: 0,
            })
            .collect();
        Arc::new(WorkspacePool {
            state: Mutex::new(PoolState {
                free,
                in_use: 0,
                leases: 0,
                waits: 0,
                poisonings: 0,
                rebuilds: 0,
                exhausted: 0,
                degradations: 0,
                cache_poisonings: 0,
            }),
            available: Condvar::new(),
            cfg: PoolConfig { slots, ..cfg },
            plans: Mutex::new(PlanCache::with_capacity(cfg.plan_capacity)),
            tuner: Mutex::new(Tuner::new(TunerConfig {
                capacity: cfg.plan_capacity,
                ..cfg.tuner
            })),
        })
    }

    /// Convenience constructor: `slots` slots, default wait budget.
    pub fn with_slots(slots: usize) -> Arc<WorkspacePool> {
        WorkspacePool::new(PoolConfig {
            slots,
            ..PoolConfig::default()
        })
    }

    /// The process-wide default pool (what [`crate::pool::ExecHandle`] and
    /// `winrs-nn` layers use unless given a private pool).
    pub fn global() -> &'static Arc<WorkspacePool> {
        static GLOBAL: OnceLock<Arc<WorkspacePool>> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkspacePool::new(PoolConfig::default()))
    }

    /// The pool's configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.cfg
    }

    fn lock_state(&self) -> crate::sync::MutexGuard<'_, PoolState> {
        // A panic while holding the state lock cannot leave the counters
        // torn (every critical section is a handful of integer updates
        // with no unwind point), so recovering the poisoned guard is
        // sound — and required: the pool must stay serviceable after a
        // leaseholder dies.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_plans(&self) -> crate::sync::MutexGuard<'_, PlanCache> {
        match self.plans.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                // Unlike the pool counters, the LRU bookkeeping *does*
                // have multi-step updates; a cache abandoned mid-update is
                // discarded wholesale and rebuilt by future misses.
                let mut g = poisoned.into_inner();
                g.clear();
                // Lock order: plans → state. No path takes state → plans,
                // so holding both here cannot deadlock.
                self.lock_state().cache_poisonings += 1;
                g
            }
        }
    }

    /// Snapshot the pool counters.
    pub fn stats(&self) -> PoolStats {
        let st = self.lock_state();
        PoolStats {
            slots: self.cfg.slots,
            in_use: st.in_use,
            leases: st.leases,
            waits: st.waits,
            poisonings: st.poisonings,
            rebuilds: st.rebuilds,
            exhausted: st.exhausted,
            degradations: st.degradations,
            cache_poisonings: st.cache_poisonings,
        }
    }

    /// Cumulative (hits, misses) of the shared plan cache.
    pub fn plan_stats(&self) -> (u64, u64) {
        let (h, m) = self.lock_plans().stats();
        (h as u64, m as u64)
    }

    /// Fetch or build a plan through the shared [`PlanCache`].
    pub fn cached_plan(
        &self,
        shape: &ConvShape,
        device: &DeviceSpec,
        precision: Precision,
    ) -> Result<Arc<WinRsPlan>, WinrsError> {
        self.lock_plans().get(shape, device, precision)
    }

    fn lock_tuner(&self) -> crate::sync::MutexGuard<'_, Tuner> {
        // The tuner's worst poisoning outcome is an abandoned half-updated
        // decision entry, which the next `decide` simply re-ranks;
        // recovering the guard keeps dispatch alive after a panic.
        self.tuner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Ask the dispatch authority which algorithm should run `conv`.
    pub(crate) fn tuner_decide(
        &self,
        conv: &ConvShape,
        device: &DeviceSpec,
        precision: Precision,
    ) -> TunerDecision {
        self.lock_tuner().decide(conv, device, precision)
    }

    /// Feed a measured wall time back into an in-flight exploration.
    pub(crate) fn tuner_observe(
        &self,
        conv: &ConvShape,
        device: &DeviceSpec,
        precision: Precision,
        algo: AlgoChoice,
        measured_s: f64,
    ) {
        self.lock_tuner().observe(conv, device, precision, algo, measured_s);
    }

    /// Snapshot the tuner counters (decisions, db hits/misses, trials,
    /// commits, evictions).
    pub fn tuner_counters(&self) -> TunerCounters {
        self.lock_tuner().counters()
    }

    /// The last non-fatal tuning-database warning, if any (corrupted or
    /// torn db files degrade to pure model dispatch instead of failing).
    pub fn tuner_warning(&self) -> Option<TuneDbWarning> {
        self.lock_tuner().warning().cloned()
    }

    /// The tuner's standing database warning, delivered at most once per
    /// occurrence (see [`Tuner::warning_once`]) — what per-request pollers
    /// (the serve layer) use so one bad file logs one line.
    pub fn tuner_warning_once(&self) -> Option<TuneDbWarning> {
        self.lock_tuner().warning_once()
    }

    /// Attach a persistent tuning database at `path`, loading any existing
    /// entries. Returns the load warning, if the file was unreadable or
    /// malformed (dispatch continues from the cost model alone).
    pub fn attach_tune_db(&self, path: &std::path::Path) -> Option<TuneDbWarning> {
        self.lock_tuner().attach_db(path)
    }

    /// Persist committed decisions to the attached tuning database.
    pub fn save_tune_db(&self) -> Result<(), TuneDbWarning> {
        self.lock_tuner().save()
    }

    /// Set the explore budget for future cold decisions (see
    /// [`crate::TunerConfig::explore_trials`]).
    pub fn set_explore_trials(&self, trials: u32) {
        self.lock_tuner().set_explore_trials(trials);
    }

    /// Run `f` with exclusive access to the pool's tuner — the escape
    /// hatch for tooling (the CLI's `tune` subcommand) that needs richer
    /// access than the narrow accessors above.
    pub fn with_tuner<R>(&self, f: impl FnOnce(&mut Tuner) -> R) -> R {
        f(&mut self.lock_tuner())
    }

    /// Lease a workspace sized for `layout`, waiting up to the pool's
    /// configured budget. See [`WorkspacePool::lease_for`].
    pub fn lease(self: &Arc<Self>, layout: &WorkspaceLayout) -> Result<Lease, WinrsError> {
        self.lease_for(layout, self.cfg.max_wait)
    }

    /// Lease a workspace sized for `layout`, waiting up to `max_wait` for
    /// a free slot.
    ///
    /// Errors:
    /// * [`WinrsError::PoolExhausted`] — every slot stayed leased for the
    ///   whole wait (admission-control backpressure).
    /// * [`WinrsError::ExecutionRejected`] with
    ///   [`Violation::WorkspaceTooSmall`] — the chaos harness's
    ///   allocation-budget site refused the arena growth; the untouched
    ///   slot is returned to the pool.
    pub fn lease_for(
        self: &Arc<Self>,
        layout: &WorkspaceLayout,
        max_wait: Duration,
    ) -> Result<Lease, WinrsError> {
        let start = Instant::now();
        let mut waited = false;
        let mut timed_out = false;
        let mut st = self.lock_state();
        loop {
            // The chaos site feigns "every slot leased" even when slots
            // are free, driving the exhaustion path deterministically.
            #[cfg(feature = "faults")]
            let feigned_full = crate::faults::fire_if_armed(crate::faults::Site::PoolSlotExhausted);
            #[cfg(not(feature = "faults"))]
            let feigned_full = false;

            if !feigned_full {
                if let Some(mut slot) = st.free.pop() {
                    st.in_use += 1;
                    st.leases += 1;
                    if waited {
                        st.waits += 1;
                    }
                    drop(st);
                    // Size the arena OUTSIDE the pool lock: `ensure` may
                    // allocate megabytes and must not serialise admission.
                    #[cfg(feature = "faults")]
                    if crate::faults::fire_if_armed(crate::faults::Site::AllocBudget) {
                        // Growth refused: hand the untouched slot straight
                        // back (not poisoned — nothing was written).
                        self.release(slot, false);
                        // The refusal fires before any growth, so the
                        // budget's view is "nothing was granted".
                        return Err(WinrsError::ExecutionRejected(vec![
                            Violation::WorkspaceTooSmall {
                                needed_elems: layout.arena_elems(),
                                got_elems: 0,
                            },
                        ]));
                    }
                    slot.ws.ensure(layout);
                    return Ok(Lease {
                        pool: Arc::clone(self),
                        slot: Some(slot),
                        poisoned: false,
                    });
                }
            }

            // Re-derive the budget from the wall clock *after every*
            // wakeup: condvar wakeups may be spurious, so neither the
            // exhaustion check nor the remaining-wait computation may
            // reuse a stale `elapsed`. `checked_sub` (never bare `-`)
            // keeps a wakeup landing exactly on — or a hair past — the
            // deadline from underflowing the subtraction, and a wait
            // that *reported* timing out ends the attempt even if the
            // clock claims a sliver remains: retrying with a near-zero
            // budget would busy-spin the condvar past `max_wait`.
            let elapsed = start.elapsed();
            let remaining = max_wait.checked_sub(elapsed).unwrap_or(Duration::ZERO);
            if timed_out || remaining.is_zero() {
                st.exhausted += 1;
                drop(st);
                return Err(WinrsError::PoolExhausted {
                    slots: self.cfg.slots,
                    waited_ms: elapsed.as_millis() as u64,
                });
            }
            waited = true;
            // Inside a loom model `wait_timeout` never times out (wall
            // clocks are not explorable) — models must return slots to
            // wake their waiters, and a stranded waiter is reported as a
            // deadlock, which is exactly the bug it would be.
            st = match self.available.wait_timeout(st, remaining) {
                Ok((g, t)) => {
                    timed_out = t.timed_out();
                    g
                }
                Err(poisoned) => {
                    let (g, t) = poisoned.into_inner();
                    timed_out = t.timed_out();
                    g
                }
            };
        }
    }

    /// Return a slot to the free list, rebuilding it first when poisoned.
    /// Never panics (runs from [`Lease`]'s `Drop`, possibly mid-unwind).
    fn release(&self, mut slot: Slot, poison: bool) {
        if poison {
            // Discard the dirty arena wholesale. A fresh `Workspace` has
            // an empty arena and `ensure` zero-fills growth, so nothing a
            // panicking holder half-wrote can reach the next leaseholder.
            slot.ws = Workspace::new();
            slot.generation += 1;
        }
        let mut st = self.lock_state();
        if poison {
            st.poisonings += 1;
            st.rebuilds += 1;
        }
        st.in_use -= 1;
        st.free.push(slot);
        drop(st);
        // notify_all, not notify_one: a woken waiter can lose the race to
        // a barging new arrival and must re-wait; waking everyone makes
        // that starvation-free (and keeps the loom model free of lost-
        // wakeup corner cases).
        self.available.notify_all();
    }

    /// Count one rung taken on the degradation ladder.
    pub(crate) fn note_degradation(&self) {
        self.lock_state().degradations += 1;
    }
}

/// An exclusive lease on one pooled [`Workspace`].
///
/// Dropping the lease returns the workspace to the pool. If the thread is
/// unwinding when the drop runs — the leaseholder panicked — the lease
/// self-poisons: the workspace is discarded and rebuilt fresh before the
/// slot becomes leasable again. [`Lease::poison`] forces the same
/// treatment explicitly (used by [`ExecHandle`], which catches the panic
/// and therefore drops the lease from non-unwinding code, and by loom
/// models, where real in-model panics would fail the whole model).
pub struct Lease {
    pool: Arc<WorkspacePool>,
    slot: Option<Slot>,
    poisoned: bool,
}

impl Lease {
    /// The leased workspace.
    pub fn workspace(&mut self) -> &mut Workspace {
        match self.slot.as_mut() {
            Some(s) => &mut s.ws,
            // The slot is vacated only by Drop, which consumes the lease.
            // winrs-audit: allow(error-hygiene) — structurally unreachable.
            None => unreachable!("lease slot vacated before drop"),
        }
    }

    /// Rebuild generation of the leased slot (bumps on every poisoning —
    /// proof that a poisoned arena was discarded, not recycled).
    pub fn generation(&self) -> u64 {
        self.slot.as_ref().map_or(0, |s| s.generation)
    }

    /// Mark the leased workspace as corrupt: on drop it will be discarded
    /// and rebuilt fresh instead of returned as-is.
    pub fn poison(&mut self) {
        self.poisoned = true;
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            // `thread::panicking()` catches holders that never had the
            // chance to call `poison()` — the unwind itself is the signal.
            let poison = self.poisoned || std::thread::panicking();
            self.pool.release(slot, poison);
        }
    }
}

/// A Send-safe batched BFC job descriptor: owned operand tensors plus the
/// admission bookkeeping a serving layer needs. Jobs with the same
/// `(ConvShape, Precision)` key can be coalesced into one
/// [`ExecHandle::run_batch`] dispatch, amortising shape validation, the
/// tuner decision, the plan fetch and the workspace lease across the
/// whole batch while every job keeps its own operands, deadline and
/// report.
pub struct BfcJob {
    /// Input feature maps `X`, `[n, ih, iw, ic]`.
    pub x: Tensor4<f32>,
    /// Output gradients `∇Y`, `[n, oh, ow, oc]`.
    pub dy: Tensor4<f32>,
    /// When the job entered the system. Queue wait is charged against the
    /// job's deadline from this instant, so time spent coalescing counts.
    pub enqueued: Instant,
    /// Per-job admission deadline measured from [`enqueued`]: a job whose
    /// budget has already expired when its turn comes is refused with
    /// [`WinrsError::DeadlineExceeded`] instead of executed late.
    ///
    /// [`enqueued`]: BfcJob::enqueued
    pub deadline: Option<Duration>,
}

impl BfcJob {
    /// A job entering the system now, with no deadline.
    pub fn new(x: Tensor4<f32>, dy: Tensor4<f32>) -> BfcJob {
        BfcJob {
            x,
            dy,
            enqueued: Instant::now(),
            deadline: None,
        }
    }

    /// Set (or clear) the per-job deadline.
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> BfcJob {
        self.deadline = deadline;
        self
    }

    /// Typed admission check: refuse the job if its budget has already
    /// expired (queue wait included).
    fn admit(&self) -> Result<(), WinrsError> {
        let Some(deadline) = self.deadline else {
            return Ok(());
        };
        let elapsed = self.enqueued.elapsed();
        if elapsed >= deadline {
            Err(WinrsError::DeadlineExceeded {
                deadline_ms: deadline.as_millis() as u64,
                elapsed_ms: elapsed.as_millis() as u64,
                rung: None,
            })
        } else {
            Ok(())
        }
    }
}

/// A Send + Sync handle that runs planned BFC executions over pool leases
/// with panic isolation, deadlines and the degradation ladder.
///
/// Cloning is cheap (one `Arc` bump); clones share the pool and plan
/// cache, so a serving layer can hand one handle to every worker thread.
#[derive(Clone)]
pub struct ExecHandle {
    pool: Arc<WorkspacePool>,
    device: DeviceSpec,
    precision: Precision,
    policy: FallbackPolicy,
    guard: NumericGuard,
    deadline: Option<Duration>,
}

impl ExecHandle {
    /// A handle over `pool` for the given device and precision, with the
    /// default policy (`Auto`), guard (`Warn`) and no deadline.
    pub fn new(pool: Arc<WorkspacePool>, device: DeviceSpec, precision: Precision) -> ExecHandle {
        ExecHandle {
            pool,
            device,
            precision,
            policy: FallbackPolicy::default(),
            guard: NumericGuard::default(),
            deadline: None,
        }
    }

    /// Set the fallback policy.
    pub fn with_policy(mut self, policy: FallbackPolicy) -> ExecHandle {
        self.policy = policy;
        self
    }

    /// Set the numeric guard.
    pub fn with_guard(mut self, guard: NumericGuard) -> ExecHandle {
        self.guard = guard;
        self
    }

    /// Set (or clear) the per-call deadline. The window opens when
    /// [`ExecHandle::run`] is entered and is shared by *every* rung of the
    /// degradation ladder: once it expires no further rung may start, and
    /// the call fails with [`WinrsError::DeadlineExceeded`] naming the
    /// rung reached.
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> ExecHandle {
        self.deadline = deadline;
        self
    }

    /// Set the explore budget: the first `trials` *warm* runs of a cold
    /// shape may trial the cost model's runner-up before the measured
    /// winner is committed (see [`crate::TunerConfig::explore_trials`]).
    /// This configures the *shared* tuner on this handle's pool, so it
    /// affects every handle over the same pool.
    pub fn with_exploration(self, trials: u32) -> ExecHandle {
        self.pool.set_explore_trials(trials);
        self
    }

    /// The pool this handle leases from.
    pub fn pool(&self) -> &Arc<WorkspacePool> {
        &self.pool
    }

    /// Dispatch one BFC problem through a pool lease. Semantics match
    /// [`fallback::run_bfc`] plus the resilience layer: panics surface as
    /// [`WinrsError::ExecutionPanicked`], pool pressure as
    /// [`WinrsError::PoolExhausted`], deadline expiry as
    /// [`WinrsError::DeadlineExceeded`] — and under the `Auto` policy all
    /// three degrade down the tuner's ranked ladder (WinRS → GEMM-BFC →
    /// direct) instead of surfacing. The report carries [`PoolStats`], the
    /// shared plan cache's counters and the tuner's dispatch stats.
    ///
    /// Which algorithm runs is decided by the pool's shared [`Tuner`]:
    /// under `Auto` the full ranked candidate list is in play (the tuner
    /// may pick a substitute outright when the cost model, the tuning
    /// database or a committed measurement says WinRS is slower); `Strict`
    /// filters the list down to WinRS alone; `Force` replaces it with one
    /// pinned entry. The policy layer never reorders candidates.
    pub fn run(
        &self,
        conv: &ConvShape,
        x: &Tensor4<f32>,
        dy: &Tensor4<f32>,
    ) -> Result<(Tensor4<f32>, ExecutionReport), WinrsError> {
        // The deadline window opens here and is shared by every rung the
        // call may visit — validation, planning, lease waits and every
        // degradation all draw from this one budget.
        let start = Instant::now();
        // Ill-formed shapes are fatal for every rung: reject before
        // touching the pool.
        let shape_violations: Vec<Violation> = conv
            .violations()
            .into_iter()
            .map(Violation::Shape)
            .collect();
        if !shape_violations.is_empty() {
            return Err(WinrsError::InvalidShape(shape_violations));
        }

        if let FallbackPolicy::Force(alg) = self.policy {
            let mut report = ExecutionReport::new(alg, self.precision, self.guard);
            report.mem = fallback::substitute_footprint(alg, conv);
            let dw = fallback::run_substitute_timed(alg, conv, x, dy, &mut report);
            self.stamp(&mut report);
            return Ok((dw, report));
        }

        // Only `Auto` consults the tuner: `Strict` pins WinRS regardless
        // of ranking, and skipping the call keeps strict-mode dispatch
        // free of decision-cache and trial churn.
        let decision = match self.policy {
            FallbackPolicy::Auto => {
                Some(self.pool.tuner_decide(conv, &self.device, self.precision))
            }
            _ => None,
        };

        if let Some(d) = decision
            .as_ref()
            .filter(|d| d.chosen != AlgoChoice::WinRs)
        {
            return self.run_chosen_substitute(conv, x, dy, d);
        }

        match self.try_winrs(conv, x, dy, start) {
            Ok((dw, mut report)) => {
                if let Some(d) = &decision {
                    report.chosen = d.chosen;
                    report.tuner = Some(d.stats);
                    self.pool.tuner_observe(
                        conv,
                        &self.device,
                        self.precision,
                        AlgoChoice::WinRs,
                        report.timing.total_s,
                    );
                }
                self.stamp(&mut report);
                Ok((dw, report))
            }
            Err(err)
                if self.policy == FallbackPolicy::Auto
                    && (err.recoverable_by_fallback() || err.recoverable_by_degradation()) =>
            {
                let (dw, mut report) =
                    self.run_degraded(conv, x, dy, err, decision.as_ref(), start)?;
                self.stamp(&mut report);
                Ok((dw, report))
            }
            Err(err) => Err(err),
        }
    }

    /// Dispatch a coalesced batch of same-shape jobs through *one* shared
    /// setup: shape validation, the tuner decision, the plan fetch and the
    /// workspace lease each happen once for the whole batch — the
    /// serving-side analogue of Winograd's batch reuse of transformed
    /// operands. Every job keeps its own operands, admission deadline and
    /// [`ExecutionReport`]; numerics are identical to dispatching each job
    /// through [`ExecHandle::run`] (same plan, same workspace discipline).
    ///
    /// Per-job semantics match `run` with two batch-specific notes: a job
    /// whose deadline expired while it waited (coalescing window, queue)
    /// is refused with [`WinrsError::DeadlineExceeded`] before any work,
    /// and plan-fetch time is amortised — batch reports do not carry a
    /// per-job `plan_s`. A panic poisons the shared lease exactly like the
    /// single-job path; the batch re-leases for the remaining jobs.
    pub fn run_batch(
        &self,
        conv: &ConvShape,
        jobs: Vec<BfcJob>,
    ) -> Vec<Result<(Tensor4<f32>, ExecutionReport), WinrsError>> {
        let shape_violations: Vec<Violation> = conv
            .violations()
            .into_iter()
            .map(Violation::Shape)
            .collect();
        if !shape_violations.is_empty() {
            return jobs
                .iter()
                .map(|_| Err(WinrsError::InvalidShape(shape_violations.clone())))
                .collect();
        }

        let decision = match self.policy {
            FallbackPolicy::Auto => {
                Some(self.pool.tuner_decide(conv, &self.device, self.precision))
            }
            _ => None,
        };

        // Degrade-or-surface for one job, against *its* budget.
        let settle = |err: WinrsError, job: &BfcJob| {
            if self.policy == FallbackPolicy::Auto
                && (err.recoverable_by_fallback() || err.recoverable_by_degradation())
            {
                let h = self.clone().with_deadline(job.deadline);
                let (dw, mut report) =
                    h.run_degraded(conv, &job.x, &job.dy, err, decision.as_ref(), job.enqueued)?;
                h.stamp(&mut report);
                Ok((dw, report))
            } else {
                Err(err)
            }
        };

        // Substitute chosen (or forced) for the whole batch: no lease to
        // amortise, but validation and the decision still happened once.
        if let FallbackPolicy::Force(_) = self.policy {
            return jobs
                .into_iter()
                .map(|job| {
                    job.admit()?;
                    self.run(conv, &job.x, &job.dy)
                })
                .collect();
        }
        if let Some(d) = decision
            .as_ref()
            .filter(|d| d.chosen != AlgoChoice::WinRs)
        {
            return jobs
                .into_iter()
                .map(|job| {
                    job.admit()?;
                    self.run_chosen_substitute(conv, &job.x, &job.dy, d)
                })
                .collect();
        }

        // The WinRS batch path: one plan, one lease, k executions.
        let plan = match self.pool.cached_plan(conv, &self.device, self.precision) {
            Ok(plan) => plan,
            Err(err) => {
                return jobs
                    .into_iter()
                    .map(|job| {
                        job.admit()?;
                        settle(err.clone(), &job)
                    })
                    .collect();
            }
        };

        let mut out = Vec::with_capacity(jobs.len());
        let mut lease: Option<Lease> = None;
        for job in &jobs {
            if let Err(refused) = job.admit() {
                out.push(Err(refused));
                continue;
            }
            // (Re-)acquire the shared lease: once for the batch, again
            // only after a poisoning discarded it.
            if lease.is_none() {
                match self.pool.lease_for(plan.workspace_layout(), self.pool.config().max_wait) {
                    Ok(l) => lease = Some(l),
                    Err(err) => {
                        out.push(settle(err, job));
                        continue;
                    }
                }
            }
            let Some(l) = lease.as_mut() else {
                // winrs-audit: allow(error-hygiene) — guarded by the
                // acquisition above; structurally unreachable.
                unreachable!("lease acquired on the previous branch");
            };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                fallback::run_planned_with(&plan, &job.x, &job.dy, self.guard, l.workspace())
            }));
            match outcome {
                Ok(Ok((dw, mut report))) => {
                    if let Some(d) = &decision {
                        report.chosen = d.chosen;
                        report.tuner = Some(d.stats);
                        self.pool.tuner_observe(
                            conv,
                            &self.device,
                            self.precision,
                            AlgoChoice::WinRs,
                            report.timing.total_s,
                        );
                    }
                    self.stamp(&mut report);
                    out.push(Ok((dw, report)));
                }
                Ok(Err(err)) => out.push(settle(err, job)),
                Err(payload) => {
                    if let Some(mut poisoned) = lease.take() {
                        poisoned.poison();
                    }
                    out.push(settle(
                        WinrsError::ExecutionPanicked {
                            site: panic_site(payload),
                        },
                        job,
                    ));
                }
            }
        }
        out
    }

    /// The tuner chose a substitute over WinRS. If WinRS was *rejected*
    /// (outside its envelope) this is a fallback: it counts as a
    /// degradation and records the rejection as the report's reason. If
    /// WinRS was viable but predicted (or measured) slower, it is a pure
    /// performance choice — no degradation, no fallback reason.
    fn run_chosen_substitute(
        &self,
        conv: &ConvShape,
        x: &Tensor4<f32>,
        dy: &Tensor4<f32>,
        decision: &TunerDecision,
    ) -> Result<(Tensor4<f32>, ExecutionReport), WinrsError> {
        let alg = decision.chosen.algorithm();
        let mut report = ExecutionReport::new(alg, self.precision, self.guard);
        report.chosen = decision.chosen;
        report.tuner = Some(decision.stats);
        if let Some(rejection) = decision.winrs_rejection.clone() {
            self.pool.note_degradation();
            report.fallback_reason = Some(rejection);
        }
        report.mem = fallback::substitute_footprint(alg, conv);
        let dw = fallback::run_substitute_timed(alg, conv, x, dy, &mut report);
        self.pool.tuner_observe(
            conv,
            &self.device,
            self.precision,
            decision.chosen,
            report.timing.total_s,
        );
        self.stamp(&mut report);
        Ok((dw, report))
    }

    /// Rung 1: the WinRS engine over a pool lease, under `catch_unwind`.
    /// `start` is the instant the whole call entered [`ExecHandle::run`]:
    /// the deadline budget this rung draws from is shared with every
    /// later rung.
    fn try_winrs(
        &self,
        conv: &ConvShape,
        x: &Tensor4<f32>,
        dy: &Tensor4<f32>,
        start: Instant,
    ) -> Result<(Tensor4<f32>, ExecutionReport), WinrsError> {
        // Standing chaos slowness lands here, ahead of the deadline check,
        // exactly like a slow dependency would.
        #[cfg(feature = "faults")]
        crate::faults::maybe_slow(crate::faults::Site::SlowBlockLoop);
        self.check_deadline(start)?;

        let t_plan = Instant::now();
        let plan = self
            .pool
            .cached_plan(conv, &self.device, self.precision)?;
        let plan_s = t_plan.elapsed().as_secs_f64();

        // The lease may not wait past the deadline: admission gets the
        // smaller of the pool's budget and what remains of the window.
        let mut wait = self.pool.config().max_wait;
        if let Some(d) = self.deadline {
            wait = wait.min(d.saturating_sub(start.elapsed()));
        }
        let mut lease = self.pool.lease_for(plan.workspace_layout(), wait)?;
        self.check_deadline(start)?;

        // The panic boundary. `AssertUnwindSafe` is sound here because
        // nothing crossing the boundary is reused on the panic path: the
        // half-written ∇W is allocated inside and dropped by the unwind,
        // and the leased workspace is poisoned (discarded + rebuilt), so
        // no broken invariant can be observed afterwards.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fallback::run_planned_with(&plan, x, dy, self.guard, lease.workspace())
        }));
        match outcome {
            Ok(Ok((dw, mut report))) => {
                report.timing.plan_s = plan_s;
                report.timing.total_s += plan_s;
                Ok((dw, report))
            }
            // Typed rejections leave the arena no dirtier than a normal
            // run (each execution re-zeroes the buckets it owns), so the
            // lease returns clean.
            Ok(Err(err)) => Err(err),
            Err(payload) => {
                lease.poison();
                drop(lease);
                Err(WinrsError::ExecutionPanicked {
                    site: panic_site(payload),
                })
            }
        }
    }

    /// The lower rungs: WinRS started (or was chosen) but failed, so take
    /// the first rung of the tuner's ranked substitute ladder. The rung is
    /// charged against the *shared* budget opened when the call entered
    /// [`ExecHandle::run`] (`start`): it may begin only while that window
    /// is still open. A budget that has already expired refuses the rung
    /// with [`WinrsError::DeadlineExceeded`] naming it — degradation may
    /// overrun the deadline by one rung's runtime (there is no mid-run
    /// cancellation), never by rungs× the window.
    fn run_degraded(
        &self,
        conv: &ConvShape,
        x: &Tensor4<f32>,
        dy: &Tensor4<f32>,
        reason: WinrsError,
        decision: Option<&TunerDecision>,
        start: Instant,
    ) -> Result<(Tensor4<f32>, ExecutionReport), WinrsError> {
        self.pool.note_degradation();
        let ladder = decision
            .map(|d| d.degradation_ladder())
            .unwrap_or_else(|| vec![AlgoChoice::GemmBfc, AlgoChoice::Direct]);
        let choice = ladder.first().copied().unwrap_or(AlgoChoice::Direct);
        // Admission before work: the budget check precedes the rung's
        // standing chaos slowness, so a rung that would start late is
        // refused instead of paying its (possibly slow) execution only to
        // deliver past the deadline anyway.
        self.check_deadline_at(start, Some(choice.name()))?;
        // Standing slowness delays the surviving rung too, exactly like a
        // slow substitute kernel would.
        #[cfg(feature = "faults")]
        crate::faults::maybe_slow(crate::faults::Site::SlowBlockLoop);
        let alg = choice.algorithm();
        let mut report = ExecutionReport::new(alg, self.precision, self.guard);
        if let Some(d) = decision {
            report.chosen = d.chosen;
            report.tuner = Some(d.stats);
        }
        // The recorded reason is the *first* cause — why WinRS did not
        // deliver; the degradations counter says how far the ladder ran.
        report.fallback_reason = Some(reason);
        report.mem = fallback::substitute_footprint(alg, conv);
        let dw = fallback::run_substitute_timed(alg, conv, x, dy, &mut report);
        Ok((dw, report))
    }

    fn check_deadline(&self, start: Instant) -> Result<(), WinrsError> {
        self.check_deadline_at(start, None)
    }

    /// Budget check against the shared window opened at `start`. `rung`
    /// names the degradation rung about to run (None on the primary
    /// path), surfaced on the error so callers see how far the ladder got.
    fn check_deadline_at(
        &self,
        start: Instant,
        rung: Option<&'static str>,
    ) -> Result<(), WinrsError> {
        let Some(deadline) = self.deadline else {
            return Ok(());
        };
        let elapsed = start.elapsed();
        if elapsed >= deadline {
            Err(WinrsError::DeadlineExceeded {
                deadline_ms: deadline.as_millis() as u64,
                elapsed_ms: elapsed.as_millis() as u64,
                rung,
            })
        } else {
            Ok(())
        }
    }

    /// Stamp the shared-cache counters and the pool snapshot into a
    /// report, whatever path produced it.
    fn stamp(&self, report: &mut ExecutionReport) {
        let (h, m) = self.pool.plan_stats();
        report.cache_hits = h;
        report.cache_misses = m;
        report.pool = Some(self.pool.stats());
    }
}

/// Best-effort human-readable panic location/payload for the typed error.
fn panic_site(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "fused block loop (non-string panic payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fallback::Algorithm;
    use crate::tuner::ChoiceSource;
    use winrs_conv::direct;
    use winrs_gpu_sim::RTX_4090;
    use winrs_tensor::mare;

    fn small_layout() -> WorkspaceLayout {
        WorkspaceLayout::scratch_only(16, 1)
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExecHandle>();
        assert_send_sync::<WorkspacePool>();
        fn assert_send<T: Send>() {}
        assert_send::<BfcJob>();
    }

    #[test]
    fn run_batch_amortises_setup_and_matches_single_runs_bitwise() {
        // Three same-shape jobs through one batched dispatch: one tuner
        // decision, one plan miss, ONE lease for the whole batch — and
        // every job's ∇W bit-identical to its own single-job dispatch.
        let conv = ConvShape::square(1, 16, 2, 2, 3);
        let jobs: Vec<BfcJob> = (0..3)
            .map(|i| {
                BfcJob::new(
                    Tensor4::<f32>::random_uniform([1, 16, 16, 2], 200 + i, 1.0),
                    Tensor4::<f32>::random_uniform([1, 16, 16, 2], 300 + i, 1.0),
                )
            })
            .collect();
        let singles: Vec<Tensor4<f32>> = jobs
            .iter()
            .map(|j| {
                let handle =
                    ExecHandle::new(WorkspacePool::with_slots(1), RTX_4090, Precision::Fp32);
                handle.run(&conv, &j.x, &j.dy).unwrap().0
            })
            .collect();

        let pool = WorkspacePool::with_slots(2);
        let handle = ExecHandle::new(Arc::clone(&pool), RTX_4090, Precision::Fp32);
        let results = handle.run_batch(&conv, jobs);
        assert_eq!(results.len(), 3);
        for (res, reference) in results.into_iter().zip(&singles) {
            let (dw, report) = res.unwrap();
            assert_eq!(report.algorithm, Algorithm::WinRs);
            assert_eq!(&dw, reference, "batched dispatch changed the numerics");
            assert!(report.pool.is_some(), "per-job pool stats");
        }
        let st = pool.stats();
        assert_eq!(st.leases, 1, "one lease amortised over the batch: {st}");
        let (hits, misses) = pool.plan_stats();
        assert_eq!((hits, misses), (0, 1), "one plan fetch for the batch");
        assert_eq!(pool.tuner_counters().decisions, 1, "one decision for the batch");
    }

    #[test]
    fn run_batch_refuses_expired_jobs_and_delivers_the_rest() {
        let conv = ConvShape::square(1, 16, 2, 2, 3);
        let x = Tensor4::<f32>::random_uniform([1, 16, 16, 2], 210, 1.0);
        let dy = Tensor4::<f32>::random_uniform([1, 16, 16, 2], 211, 1.0);
        let expired = BfcJob::new(x.clone(), dy.clone())
            .with_deadline(Some(Duration::ZERO));
        let healthy = BfcJob::new(x, dy).with_deadline(Some(Duration::from_secs(30)));
        let handle = ExecHandle::new(WorkspacePool::with_slots(1), RTX_4090, Precision::Fp32);
        let mut results = handle.run_batch(&conv, vec![expired, healthy]).into_iter();
        let first = results.next().unwrap();
        assert!(
            matches!(first, Err(WinrsError::DeadlineExceeded { rung: None, .. })),
            "queue-expired job refused before any work"
        );
        let (_, report) = results.next().unwrap().unwrap();
        assert_eq!(report.algorithm, Algorithm::WinRs, "healthy job unaffected");
    }

    #[test]
    fn lease_round_trip_updates_counters() {
        let pool = WorkspacePool::with_slots(2);
        let layout = small_layout();
        {
            let mut lease = pool.lease(&layout).unwrap();
            assert!(lease.workspace().fits(&layout));
            let st = pool.stats();
            assert_eq!((st.in_use, st.leases), (1, 1));
        }
        let st = pool.stats();
        assert_eq!(st.in_use, 0);
        assert_eq!(st.leases, 1);
        assert_eq!(st.poisonings, 0);
    }

    #[test]
    fn exhausted_pool_reports_typed_backpressure() {
        let pool = WorkspacePool::new(PoolConfig {
            slots: 1,
            max_wait: Duration::from_millis(5),
            ..PoolConfig::default()
        });
        let layout = small_layout();
        let _held = pool.lease(&layout).unwrap();
        let err = match pool.lease(&layout) {
            Err(e) => e,
            Ok(_) => panic!("second lease must be refused"),
        };
        assert!(matches!(err, WinrsError::PoolExhausted { slots: 1, .. }), "{err}");
        assert_eq!(pool.stats().exhausted, 1);
    }

    #[test]
    fn waiter_acquires_after_release() {
        let pool = WorkspacePool::new(PoolConfig {
            slots: 1,
            max_wait: Duration::from_secs(5),
            ..PoolConfig::default()
        });
        let layout = small_layout();
        let lease = pool.lease(&layout).unwrap();
        let p2 = Arc::clone(&pool);
        let waiter = std::thread::spawn(move || {
            let layout = WorkspaceLayout::scratch_only(16, 1);
            p2.lease(&layout).map(|_| ()).is_ok()
        });
        // Give the waiter time to park, then release.
        std::thread::sleep(Duration::from_millis(20));
        drop(lease);
        assert!(waiter.join().unwrap(), "waiter must get the returned slot");
        let st = pool.stats();
        assert_eq!(st.leases, 2);
        assert_eq!(st.in_use, 0);
        assert!(st.waits >= 1, "the second lease should have waited: {st}");
    }

    #[test]
    fn explicit_poison_rebuilds_the_slot() {
        let pool = WorkspacePool::with_slots(1);
        let layout = small_layout();
        let gen_before;
        {
            let mut lease = pool.lease(&layout).unwrap();
            gen_before = lease.generation();
            lease.workspace().ensure(&layout);
            lease.poison();
        }
        let st = pool.stats();
        assert_eq!((st.poisonings, st.rebuilds), (1, 1));
        let lease = pool.lease(&layout).unwrap();
        assert_eq!(lease.generation(), gen_before + 1, "rebuilt, not recycled");
    }

    #[test]
    fn panicking_holder_poisons_on_unwind() {
        let pool = WorkspacePool::with_slots(1);
        let layout = small_layout();
        let p2 = Arc::clone(&pool);
        let result = std::thread::spawn(move || {
            let layout = WorkspaceLayout::scratch_only(16, 1);
            let _lease = p2.lease(&layout).unwrap();
            // winrs-audit: allow(error-hygiene) — deliberate test panic.
            panic!("holder dies with the lease live");
        })
        .join();
        assert!(result.is_err());
        let st = pool.stats();
        assert_eq!((st.in_use, st.poisonings, st.rebuilds), (0, 1, 1));
        // The pool is fully leasable again.
        drop(pool.lease(&layout).unwrap());
    }

    #[test]
    fn exec_handle_matches_direct_dispatch_bitwise() {
        // The pool lease must not change numerics: same plan, same
        // workspace discipline, bit-identical ∇W vs the plain dispatcher.
        let conv = ConvShape::square(2, 16, 4, 4, 3);
        let x64 = Tensor4::<f64>::random_uniform([2, 16, 16, 4], 71, 1.0);
        let dy64 = Tensor4::<f64>::random_uniform([2, 16, 16, 4], 72, 1.0);
        let (x, dy): (Tensor4<f32>, Tensor4<f32>) = (x64.cast(), dy64.cast());
        let handle = ExecHandle::new(WorkspacePool::with_slots(2), RTX_4090, Precision::Fp32);
        let (dw, report) = handle.run(&conv, &x, &dy).unwrap();
        assert_eq!(report.algorithm, Algorithm::WinRs);
        let (dw_ref, _) = fallback::run_bfc(
            &conv,
            &RTX_4090,
            Precision::Fp32,
            &x,
            &dy,
            FallbackPolicy::Auto,
            NumericGuard::Warn,
        )
        .unwrap();
        assert_eq!(dw, dw_ref, "pool lease changed the numerics");
        let exact = direct::bfc_direct(&conv, &x64, &dy64);
        assert!(mare(&dw, &exact) < 1e-5);
        // The report carries the pool snapshot and shared-cache counters.
        let stats = report.pool.unwrap();
        assert_eq!((stats.leases, stats.in_use), (1, 0));
        assert_eq!((report.cache_hits, report.cache_misses), (0, 1));
        assert!(report.summary_line().contains("pool["), "{}", report.summary_line());
    }

    #[test]
    fn exec_handle_zero_allocation_warm_path() {
        // PR 2's zero-allocation guarantee must survive the lease layer:
        // after the first call warms the slot, later calls grow nothing.
        let conv = ConvShape::square(1, 16, 2, 2, 3);
        let x = Tensor4::<f32>::random_uniform([1, 16, 16, 2], 81, 1.0);
        let dy = Tensor4::<f32>::random_uniform([1, 16, 16, 2], 82, 1.0);
        let handle = ExecHandle::new(WorkspacePool::with_slots(1), RTX_4090, Precision::Fp32);
        let (_, r1) = handle.run(&conv, &x, &dy).unwrap();
        assert_eq!(r1.mem.hot_loop_allocs, 0);
        let mut lease = handle.pool().lease(&small_layout()).unwrap();
        let grows_after_warmup = lease.workspace().grows();
        drop(lease);
        let (_, r2) = handle.run(&conv, &x, &dy).unwrap();
        assert_eq!(r2.mem.hot_loop_allocs, 0);
        let mut lease = handle.pool().lease(&small_layout()).unwrap();
        assert_eq!(
            lease.workspace().grows(),
            grows_after_warmup,
            "warm path must not grow the pooled arena"
        );
        assert_eq!((r2.cache_hits, r2.cache_misses), (1, 1));
    }

    #[test]
    fn exec_handle_unported_fp16_width_degrades_to_gemm() {
        let conv = ConvShape::square(1, 16, 3, 3, 4); // no FP16 kernel
        let x = Tensor4::<f32>::random_uniform([1, conv.ih, conv.iw, conv.ic], 91, 1.0);
        let dy = Tensor4::<f32>::random_uniform([1, conv.oh(), conv.ow(), conv.oc], 92, 0.01);
        let handle = ExecHandle::new(WorkspacePool::with_slots(1), RTX_4090, Precision::Fp16);
        let (_, report) = handle.run(&conv, &x, &dy).unwrap();
        assert_eq!(report.algorithm, Algorithm::GemmBfc);
        assert!(report.fallback_reason.is_some());
        assert_eq!(report.pool.unwrap().degradations, 1);
    }

    #[test]
    fn strict_policy_propagates_runtime_errors() {
        let conv = ConvShape::square(1, 16, 3, 3, 4);
        let x = Tensor4::<f32>::random_uniform([1, conv.ih, conv.iw, conv.ic], 93, 1.0);
        let dy = Tensor4::<f32>::random_uniform([1, conv.oh(), conv.ow(), conv.oc], 94, 0.01);
        let handle = ExecHandle::new(WorkspacePool::with_slots(1), RTX_4090, Precision::Fp16)
            .with_policy(FallbackPolicy::Strict);
        let err = handle.run(&conv, &x, &dy).unwrap_err();
        assert!(err.recoverable_by_fallback(), "{err}");
    }

    #[test]
    fn zero_deadline_refuses_every_rung_with_shared_budget() {
        // Regression (PR 8): pre-fix, each ladder rung opened a *fresh*
        // deadline window, so a zero deadline still delivered via direct
        // after burning rungs× the budget. With one shared budget the
        // expired window refuses degradation outright, naming the rung
        // that could not start.
        let conv = ConvShape::square(1, 12, 2, 2, 3);
        let x = Tensor4::<f32>::random_uniform([1, 12, 12, 2], 95, 1.0);
        let dy = Tensor4::<f32>::random_uniform([1, 12, 12, 2], 96, 1.0);
        let pool = WorkspacePool::with_slots(1);
        let handle = ExecHandle::new(Arc::clone(&pool), RTX_4090, Precision::Fp32)
            .with_deadline(Some(Duration::ZERO));
        let err = handle.run(&conv, &x, &dy).unwrap_err();
        match err {
            WinrsError::DeadlineExceeded { rung, .. } => {
                assert!(rung.is_some(), "the refused degradation names its rung");
            }
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        // The ladder was *entered* (counted) but the rung never ran.
        assert_eq!(pool.stats().degradations, 1);

        // Strict policy surfaces the typed error from the primary path,
        // before any ladder rung is in play.
        let strict = ExecHandle::new(WorkspacePool::with_slots(1), RTX_4090, Precision::Fp32)
            .with_policy(FallbackPolicy::Strict)
            .with_deadline(Some(Duration::ZERO));
        let err = strict.run(&conv, &x, &dy).unwrap_err();
        assert!(
            matches!(err, WinrsError::DeadlineExceeded { rung: None, .. }),
            "{err}"
        );

        // A generous deadline still delivers WinRS untouched.
        let relaxed = ExecHandle::new(WorkspacePool::with_slots(1), RTX_4090, Precision::Fp32)
            .with_deadline(Some(Duration::from_secs(30)));
        let (dw, report) = relaxed.run(&conv, &x, &dy).unwrap();
        assert_eq!(report.algorithm, Algorithm::WinRs);
        let x64: Tensor4<f64> = x.cast();
        let dy64: Tensor4<f64> = dy.cast();
        let exact = direct::bfc_direct(&conv, &x64, &dy64);
        assert!(mare(&dw, &exact) < 1e-5);
    }

    #[test]
    fn contended_wait_neither_underflows_nor_spins_past_budget() {
        // Regression (PR 8): a wakeup landing near the deadline used to
        // feed an unclamped `max_wait - elapsed` back into `wait_timeout`
        // and ignored the timed-out flag, so a barging releaser could keep
        // a loser re-waiting on slivers past its budget. The waiter must
        // come back with typed backpressure in ~max_wait even while the
        // slot churns.
        let max_wait = Duration::from_millis(40);
        let pool = WorkspacePool::new(PoolConfig {
            slots: 1,
            max_wait,
            ..PoolConfig::default()
        });
        let layout = small_layout();

        // Churner: grab-and-drop the sole slot in a tight loop. Every drop
        // notifies the parked waiter, who races the churner's immediate
        // re-lease and usually loses — a stream of wakeups with (almost)
        // nothing to take, each of which re-derives the waiter's remaining
        // budget.
        let p2 = Arc::clone(&pool);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let churner = std::thread::spawn(move || {
            let layout = WorkspaceLayout::scratch_only(16, 1);
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                if let Ok(l) = p2.lease_for(&layout, Duration::ZERO) {
                    drop(l);
                }
            }
        });

        // Whether a given attempt wins a slot or exhausts is a race; the
        // invariant is that *every* attempt comes back within its budget
        // (plus scheduler slack), and typed exhaustion never claims to
        // have waited much longer than asked.
        for _ in 0..5 {
            let t0 = Instant::now();
            let res = pool.lease_for(&layout, max_wait);
            let waited = t0.elapsed();
            assert!(
                waited < max_wait * 3,
                "lease attempt spun past its wait budget: {waited:?}"
            );
            if let Err(err) = res {
                match err {
                    WinrsError::PoolExhausted { waited_ms, .. } => assert!(
                        waited_ms <= max_wait.as_millis() as u64 + 40,
                        "over-reported wait: {waited_ms} ms"
                    ),
                    other => panic!("expected PoolExhausted, got {other}"),
                }
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        churner.join().unwrap();
    }

    #[test]
    fn exec_handle_honours_pure_tuner_choice() {
        // On this wide-but-shallow shape the cost model prefers direct
        // convolution even though WinRS is perfectly viable: dispatch must
        // follow the tuner as a pure performance choice — the substitute
        // runs, nothing "degrades".
        let conv = ConvShape::square(2, 32, 4, 4, 2);
        let x = Tensor4::<f32>::random_uniform([2, conv.ih, conv.iw, conv.ic], 97, 1.0);
        let dy = Tensor4::<f32>::random_uniform([2, conv.oh(), conv.ow(), conv.oc], 98, 0.1);
        let handle = ExecHandle::new(WorkspacePool::with_slots(1), RTX_4090, Precision::Fp32);
        let (dw, report) = handle.run(&conv, &x, &dy).unwrap();
        assert_eq!(report.algorithm, Algorithm::Direct);
        assert_eq!(report.chosen, AlgoChoice::Direct);
        assert!(report.fallback_reason.is_none(), "a choice is not a fallback");
        assert_eq!(report.pool.as_ref().unwrap().degradations, 0);
        let stats = report.tuner.unwrap();
        assert_eq!(stats.source, ChoiceSource::Model);
        assert!(!stats.db_hit);
        assert!(
            report.summary_line().contains("tuner[chosen=direct"),
            "{}",
            report.summary_line()
        );
        let x64: Tensor4<f64> = x.cast();
        let dy64: Tensor4<f64> = dy.cast();
        let exact = direct::bfc_direct(&conv, &x64, &dy64);
        assert!(mare(&dw, &exact) < 1e-5);
    }

    #[test]
    fn pool_tuner_cache_respects_plan_capacity() {
        // The tuner's decision cache scales with the same knob as the plan
        // cache; three distinct shapes through a 2-deep cache must evict.
        let pool = WorkspacePool::new(PoolConfig {
            plan_capacity: 2,
            ..PoolConfig::default()
        });
        let handle = ExecHandle::new(Arc::clone(&pool), RTX_4090, Precision::Fp32);
        for res in [12usize, 14, 16] {
            let conv = ConvShape::square(1, res, 2, 2, 3);
            let x = Tensor4::<f32>::random_uniform([1, res, res, 2], 99, 1.0);
            let dy = Tensor4::<f32>::random_uniform([1, conv.oh(), conv.ow(), 2], 100, 1.0);
            handle.run(&conv, &x, &dy).unwrap();
        }
        let c = pool.tuner_counters();
        assert_eq!(c.decisions, 3);
        assert_eq!(c.evictions, 1, "3 shapes through a 2-deep decision cache");
    }

    #[test]
    fn warm_pool_with_populated_db_never_measures() {
        let path = std::env::temp_dir().join(format!(
            "winrs-pool-warm-db-{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let conv = ConvShape::square(1, 16, 2, 2, 3);
        let x = Tensor4::<f32>::random_uniform([1, conv.ih, conv.iw, conv.ic], 101, 1.0);
        let dy = Tensor4::<f32>::random_uniform([1, conv.oh(), conv.ow(), conv.oc], 102, 1.0);

        // Cold process: explore, commit the measured winner, persist.
        let pool = WorkspacePool::with_slots(1);
        assert!(pool.attach_tune_db(&path).is_none());
        let handle = ExecHandle::new(Arc::clone(&pool), RTX_4090, Precision::Fp32)
            .with_exploration(1);
        for _ in 0..3 {
            handle.run(&conv, &x, &dy).unwrap();
        }
        let cold = pool.tuner_counters();
        assert_eq!(
            cold.trials, 2,
            "explore budget of one → model pick + one runner-up, both measured"
        );
        assert!(cold.commits >= 1, "exploration must commit a winner");
        pool.save_tune_db().unwrap();

        // Warm process: the decision comes from the database — zero trial
        // measurements ever, even with the explore budget still set.
        let pool2 = WorkspacePool::with_slots(1);
        assert!(pool2.attach_tune_db(&path).is_none());
        pool2.set_explore_trials(1);
        let handle2 = ExecHandle::new(Arc::clone(&pool2), RTX_4090, Precision::Fp32);
        for _ in 0..3 {
            let (_, report) = handle2.run(&conv, &x, &dy).unwrap();
            let stats = report.tuner.unwrap();
            assert!(stats.db_hit);
            assert_eq!(stats.source, ChoiceSource::Database);
        }
        let warm = pool2.tuner_counters();
        assert_eq!(warm.trials, 0, "warm process must never re-measure");
        assert_eq!(warm.db_hits, 1);
        let _ = std::fs::remove_file(&path);
    }
}
