//! Exhaustive concurrency models for the engine's shared-state types,
//! checked with the vendored `loom` model checker (every interleaving at
//! atomic/mutex granularity, sequential consistency).
//!
//! Compiled and run only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p winrs-core --test loom_models --release
//! ```
//!
//! (`scripts/ci.sh` runs exactly that, with a separate target dir so the
//! flag doesn't thrash the main build cache.) Under this cfg,
//! `winrs-core`'s `crate::sync` shim swaps `std::sync` for the model
//! checker, so [`winrs_core::TimingSink`] and
//! [`winrs_core::ScratchPool`] are explored through exactly the code
//! production runs. [`winrs_core::PlanCache`] is externally synchronised
//! by design (`&mut self` API), so its model wraps it in a `loom` mutex
//! the way `winrs-nn`'s `Conv2d` wraps it in a real one.

#![cfg(loom)]

use loom::sync::{Arc, Mutex};
use winrs_core::workspace::ScratchPool;
use winrs_core::{PlanCache, Precision, TimingSink};
use winrs_gpu_sim::RTX_4090;

use winrs_conv::ConvShape;

/// TimingSink per-column flush: two concurrent `record_block` calls (the
/// per-block-column flush of thread-local phase counters) must never lose
/// or tear an update — every counter's final value is the exact sum, and
/// the min/max track both columns' totals. Explores all C(16,8) = 12870
/// interleavings of the 2 × 8 atomic RMWs.
#[test]
fn timing_sink_flush_is_lossless_under_interleaving() {
    loom::model(|| {
        let sink = Arc::new(TimingSink::new());
        let handles: Vec<_> = [(1u64, 2, 3, 4, 10u64), (5, 6, 7, 8, 30)]
            .into_iter()
            .map(|(ft, it, ewmm, ot, total)| {
                let sink = Arc::clone(&sink);
                loom::thread::spawn(move || sink.record_block(ft, it, ewmm, ot, total))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sink.blocks(), 2);
        assert_eq!(sink.ft_ns(), 6);
        assert_eq!(sink.it_ns(), 8);
        assert_eq!(sink.ewmm_ns(), 10);
        assert_eq!(sink.ot_ns(), 12);
        assert_eq!(sink.busy_ns(), 40);
        assert_eq!(sink.min_ns(), 10);
        assert_eq!(sink.max_ns(), 30);
    });
}

/// ScratchPool round-robin slot handout: two concurrent `with_slot`
/// callers may race the round-robin ticket onto the same slot — the inner
/// mutex must still give each exclusive use (no observed interference
/// while holding the slot), and no caller may fall onto the counted heap
/// path when its request fits a slot.
#[test]
fn scratch_pool_slots_are_exclusive_under_interleaving() {
    const SLOT_ELEMS: usize = 4;
    const SLOTS: usize = 2;
    loom::model(|| {
        // Leaked per-execution arena: `loom::thread::spawn` needs
        // `'static` borrows and the model arena is 64 bytes.
        let arena: &'static mut [f32] =
            Box::leak(vec![0.0f32; ScratchPool::region_elems(SLOT_ELEMS, SLOTS)].into_boxed_slice());
        let pool = Arc::new(ScratchPool::new(arena, SLOT_ELEMS));
        let handles: Vec<_> = (1..=2u32)
            .map(|tag| {
                let pool = Arc::clone(&pool);
                loom::thread::spawn(move || {
                    pool.with_slot(SLOT_ELEMS, |buf| {
                        assert_eq!(buf.len(), SLOT_ELEMS);
                        buf.fill(tag as f32);
                        // Exclusive use: nobody scribbles while we hold it.
                        assert!(buf.iter().all(|&v| v == tag as f32));
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.hot_loop_allocs(), 0, "fitting requests must not heap-allocate");
    });
}

/// ScratchPool overflow accounting: an oversized request takes the counted
/// heap path in every interleaving, and fitting requests never do.
#[test]
fn scratch_pool_overflow_is_counted_exactly_once() {
    const SLOT_ELEMS: usize = 4;
    loom::model(|| {
        let arena: &'static mut [f32] =
            Box::leak(vec![0.0f32; ScratchPool::region_elems(SLOT_ELEMS, 1)].into_boxed_slice());
        let pool = Arc::new(ScratchPool::new(arena, SLOT_ELEMS));
        let big = {
            let pool = Arc::clone(&pool);
            loom::thread::spawn(move || pool.with_slot(SLOT_ELEMS * 2, |buf| buf.len()))
        };
        let fit = {
            let pool = Arc::clone(&pool);
            loom::thread::spawn(move || pool.with_slot(SLOT_ELEMS, |buf| buf.len()))
        };
        assert_eq!(big.join().unwrap(), SLOT_ELEMS * 2);
        assert_eq!(fit.join().unwrap(), SLOT_ELEMS);
        assert_eq!(pool.hot_loop_allocs(), 1);
    });
}

/// PlanCache LRU hit/miss/eviction counters under concurrent lookups
/// through a shared mutex (capacity 1 forces evictions): in every
/// interleaving, `hits + misses` equals the number of lookups, every miss
/// either evicted something or grew the cache (`misses == evictions +
/// len`), and an evicted entry's `Arc` stays usable.
#[test]
fn plan_cache_counters_stay_consistent_under_interleaving() {
    loom::model(|| {
        let cache = Arc::new(Mutex::new(PlanCache::with_capacity(1)));
        let shapes = [
            ConvShape::square(1, 8, 1, 1, 2),
            ConvShape::square(1, 8, 1, 1, 3),
        ];
        let handles: Vec<_> = shapes
            .into_iter()
            .map(|shape| {
                let cache = Arc::clone(&cache);
                loom::thread::spawn(move || {
                    for _ in 0..2 {
                        let plan = cache
                            .lock()
                            .unwrap()
                            .get(&shape, &RTX_4090, Precision::Fp32)
                            .expect("tiny fp32 plan always builds");
                        // The Arc outlives any eviction by the other thread.
                        assert!(plan.shape().fw >= 2);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let cache = cache.lock().unwrap();
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 4, "every lookup is a hit or a miss");
        assert_eq!(
            misses,
            cache.evictions() + cache.len(),
            "every miss inserted: still resident or since evicted"
        );
        assert!(cache.len() <= cache.capacity());
    });
}

/// Work-stealing deque handoff (PR 9): two workers drain a `StealQueues`
/// concurrently — worker 1's queue is empty so every task it gets is a
/// steal from worker 0's tail. In every interleaving, each task is popped
/// exactly once (no double-pop) and no task is lost: the union of both
/// workers' pops is exactly the initial task set.
#[test]
fn steal_queue_handoff_no_double_pop_no_lost_task() {
    use winrs_core::engine::sched::StealQueues;
    loom::model(|| {
        // 4 tasks, 2 workers → contiguous split gives each worker 2; the
        // model sends worker 1 back for more after its own run dry, so
        // both the own-queue pop and the steal-half path are explored.
        let q = Arc::new(StealQueues::new(vec![0usize, 1, 2, 3], 2));
        let handles: Vec<_> = (0..2)
            .map(|w| {
                let q = Arc::clone(&q);
                loom::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(task) = q.pop(w) {
                        got.push(task);
                    }
                    got
                })
            })
            .collect();
        let mut seen = Vec::new();
        for h in handles {
            seen.extend(h.join().unwrap());
        }
        seen.sort_unstable();
        assert_eq!(
            seen,
            vec![0, 1, 2, 3],
            "every task exactly once, none lost, none doubled"
        );
    });
}
