//! Exhaustive concurrency models for the leasing [`winrs_core::pool::WorkspacePool`],
//! checked with the vendored `loom` model checker.
//!
//! Compiled and run only under `RUSTFLAGS="--cfg loom"` (scripts/ci.sh
//! step 7 runs them next to `loom_models.rs`, sharing the separate
//! `target/loom` build cache):
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p winrs-core --test pool_models --release
//! ```
//!
//! Under this cfg the pool's `crate::sync` shim swaps `std::sync::{Mutex,
//! Condvar}` for the model checker's, so every interleaving of
//! lease/wait/release/poison is explored through exactly the code
//! production runs. The three properties the chaos suite relies on:
//!
//! 1. **No double-lease** — two concurrent leaseholders of a one-slot
//!    pool never overlap (the slot is exclusive in every schedule).
//! 2. **Poisoned never re-issued without rebuild** — a slot poisoned by
//!    its holder reaches the next holder with a bumped rebuild
//!    generation (fresh arena), in every schedule.
//! 3. **Waiters observe returned slots** — a lease blocked on a full
//!    pool is woken by the release and completes; a stranded waiter
//!    would be reported by loom as a deadlock.
//!
//! The models use an `accounting` layout (no arena elements) so the
//! in-model `ensure` is free and the state space stays tractable. Real
//! in-model panics would fail the model, so the poison path is driven by
//! the explicit [`Lease::poison`] switch — production's unwind path sets
//! exactly the same flag from `Drop` (see `pool.rs`), and the chaos suite
//! covers the real-panic route.

#![cfg(loom)]

use loom::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use winrs_core::pool::{PoolConfig, WorkspacePool};
use winrs_core::WorkspaceLayout;

fn model_pool() -> Arc<WorkspacePool> {
    WorkspacePool::new(PoolConfig {
        slots: 1,
        // In-model waits never time out (wall time is not explorable);
        // the bound only has to be non-zero so the wait path is taken.
        max_wait: Duration::from_secs(3600),
        plan_capacity: 1,
        ..PoolConfig::default()
    })
}

fn layout() -> WorkspaceLayout {
    WorkspaceLayout::accounting("pool-model", 0)
}

/// Properties 1 and 3: the sole slot is exclusive in every interleaving,
/// and the loser of the race is woken by the winner's release (a lost
/// wakeup would strand the waiter and trip loom's deadlock detection).
#[test]
fn one_slot_pool_is_exclusive_and_wakes_waiters() {
    loom::model(|| {
        let pool = model_pool();
        let held = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let held = Arc::clone(&held);
                loom::thread::spawn(move || {
                    let lease = pool.lease(&layout()).expect("in-model lease cannot time out");
                    // ORDERING: the lease's mutex already orders the two
                    // critical sections; the flag is a probe, not a lock.
                    // load/store (not an RMW) suffices: if two leases ever
                    // overlapped, some explored schedule interleaves one
                    // holder's load between the other's store(true) and
                    // store(false) and the assert fires.
                    assert!(
                        !held.load(Ordering::Relaxed),
                        "two live leases of a one-slot pool"
                    );
                    held.store(true, Ordering::Relaxed);
                    held.store(false, Ordering::Relaxed);
                    drop(lease);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let st = pool.stats();
        assert_eq!(st.leases, 2, "{st}");
        assert_eq!(st.in_use, 0, "every lease returned: {st}");
        assert_eq!(st.poisonings, 0, "{st}");
    });
}

/// Property 2: whatever order the two holders run in, a poisoned slot is
/// discarded and rebuilt (generation bump) before it is ever re-issued —
/// and the pool ends fully leasable with coherent counters.
#[test]
fn poisoned_slot_is_rebuilt_before_reissue() {
    loom::model(|| {
        let pool = model_pool();
        let poisoner = {
            let pool = Arc::clone(&pool);
            loom::thread::spawn(move || {
                let mut lease = pool.lease(&layout()).expect("lease");
                let gen = lease.generation();
                lease.poison();
                gen
            })
        };
        let bystander = {
            let pool = Arc::clone(&pool);
            loom::thread::spawn(move || {
                let lease = pool.lease(&layout()).expect("lease");
                lease.generation()
            })
        };
        let poisoned_gen = poisoner.join().unwrap();
        let seen_gen = bystander.join().unwrap();
        // The bystander ran either before the poisoning (same generation)
        // or after it (bumped) — never a stale in-between.
        assert!(
            seen_gen == poisoned_gen || seen_gen == poisoned_gen + 1,
            "bystander saw generation {seen_gen}, poisoner held {poisoned_gen}"
        );
        // After both holders are done the rebuild is definitely visible.
        let lease = pool.lease(&layout()).expect("pool stays leasable");
        assert_eq!(
            lease.generation(),
            poisoned_gen + 1,
            "poisoned slot re-issued without rebuild"
        );
        drop(lease);
        let st = pool.stats();
        assert_eq!((st.poisonings, st.rebuilds), (1, 1), "{st}");
        assert_eq!(st.leases, 3, "{st}");
        assert_eq!(st.in_use, 0, "{st}");
    });
}
