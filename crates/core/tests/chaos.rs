//! Seeded chaos campaigns against the resilient execution layer.
//!
//! Every test arms deterministic fault injections ([`winrs_core::faults`])
//! at named sites — a panic inside the fused block loop, feigned workspace
//! pool exhaustion, an allocation-budget refusal, artificial slowness —
//! and asserts the contract from DESIGN §11: **every campaign ends in
//! either a bitwise-correct `∇W` or a typed [`WinrsError`]**, never an
//! escaped panic, with the pool back to a clean, fully-leasable state
//! (no leaked leases, every poisoning matched by a rebuild).
//!
//! "Bitwise-correct" is literal: a degraded outcome must equal a clean
//! (chaos-free) run of the same substitute algorithm bit for bit, and a
//! WinRS outcome must equal the clean WinRS dispatch bit for bit — chaos
//! may change *which* algorithm delivers, never *what* it computes.
//!
//! The injection registry is process-global, so everything here (and any
//! test that merely runs concurrently with it) holds
//! [`winrs_core::faults::serial_guard`].

#![cfg(feature = "faults")]

use std::sync::Arc;
use std::time::Duration;
use winrs_conv::{direct, ConvShape};
use winrs_core::fallback::{self, Algorithm, FallbackPolicy, NumericGuard};
use winrs_core::faults::{self, Site};
use winrs_core::pool::{ExecHandle, PoolConfig, WorkspacePool};
use winrs_core::{Precision, WinrsError};
use winrs_gpu_sim::RTX_4090;
use winrs_tensor::{mare, Tensor4};

/// In-envelope FP32 problem small enough for many reruns.
fn problem() -> (ConvShape, Tensor4<f32>, Tensor4<f32>, Tensor4<f64>) {
    let conv = ConvShape::square(2, 16, 4, 4, 3);
    let x64 = Tensor4::<f64>::random_uniform([conv.n, conv.ih, conv.iw, conv.ic], 1001, 1.0);
    let dy64 = Tensor4::<f64>::random_uniform([conv.n, conv.oh(), conv.ow(), conv.oc], 1002, 1.0);
    let exact = direct::bfc_direct(&conv, &x64, &dy64);
    (conv, x64.cast(), dy64.cast(), exact)
}

fn handle(pool: &Arc<WorkspacePool>) -> ExecHandle {
    ExecHandle::new(Arc::clone(pool), RTX_4090, Precision::Fp32)
}

/// The post-campaign pool contract: nothing leaked, every poisoning
/// rebuilt, and every slot actually leasable right now.
fn assert_pool_clean(pool: &Arc<WorkspacePool>) {
    let st = pool.stats();
    assert_eq!(st.in_use, 0, "leaked lease: {st}");
    assert_eq!(
        st.poisonings, st.rebuilds,
        "poisoned slot without a rebuild: {st}"
    );
    let layout = winrs_core::WorkspaceLayout::accounting("clean-check", 0);
    let leases: Vec<_> = (0..pool.config().slots)
        .map(|i| {
            pool.lease_for(&layout, Duration::ZERO)
                .unwrap_or_else(|e| panic!("slot {i} not leasable after campaign: {e}"))
        })
        .collect();
    drop(leases);
}

/// Disarm everything and return the sites that fired, failing loudly if
/// the campaign never reached its injection point.
fn end_campaign() -> Vec<Site> {
    let fired = faults::fired_sites();
    faults::disarm_sites();
    faults::disarm();
    faults::set_slow_ms(0);
    fired
}

/// Campaign 1 — panic in the hot loop. The fused-kernel panic is caught
/// at the lease boundary: under `Auto` the ladder delivers GEMM-BFC
/// bit-for-bit, the dirty workspace is poisoned and rebuilt, and the
/// half-written dw-bucket never escapes; under `Strict` the same failure
/// surfaces as typed [`WinrsError::ExecutionPanicked`].
#[test]
fn panic_in_hot_loop_is_contained_and_degrades() {
    let _g = faults::serial_guard();
    let (conv, x, dy, exact) = problem();

    faults::arm_sites([Site::HotLoopPanic]);
    let pool = WorkspacePool::with_slots(1);
    let (dw, report) = handle(&pool).run(&conv, &x, &dy).expect("Auto contains the panic");
    assert_eq!(end_campaign(), vec![Site::HotLoopPanic]);

    assert_eq!(report.algorithm, Algorithm::GemmBfc);
    assert!(
        matches!(report.fallback_reason, Some(WinrsError::ExecutionPanicked { .. })),
        "{:?}",
        report.fallback_reason
    );
    let st = report.pool.expect("pool snapshot");
    assert_eq!((st.poisonings, st.rebuilds, st.degradations), (1, 1, 1), "{st}");
    // Bitwise-correct: identical to a clean forced GEMM-BFC run.
    let (dw_ref, _) = handle(&pool)
        .with_policy(FallbackPolicy::Force(Algorithm::GemmBfc))
        .run(&conv, &x, &dy)
        .expect("clean reference");
    assert_eq!(dw, dw_ref, "degraded ∇W differs from clean GEMM-BFC");
    assert!(mare(&dw, &exact) < 1e-5);
    assert_pool_clean(&pool);

    // Strict: the typed error, not a crash — and still a clean pool.
    faults::arm_sites([Site::HotLoopPanic]);
    let strict = WorkspacePool::with_slots(1);
    let err = handle(&strict)
        .with_policy(FallbackPolicy::Strict)
        .run(&conv, &x, &dy)
        .expect_err("Strict surfaces the panic as a typed error");
    assert_eq!(end_campaign(), vec![Site::HotLoopPanic]);
    assert!(matches!(err, WinrsError::ExecutionPanicked { .. }), "{err}");
    assert!(err.to_string().contains("poisoned and rebuilt"), "{err}");
    assert_pool_clean(&strict);
}

/// Campaign 2 — slot exhaustion. The chaos site feigns "every slot
/// leased"; admission control turns the bounded wait into typed
/// [`WinrsError::PoolExhausted`] backpressure, which `Auto` degrades.
#[test]
fn slot_exhaustion_backpressure_degrades_or_surfaces() {
    let _g = faults::serial_guard();
    let (conv, x, dy, exact) = problem();
    let pool = WorkspacePool::new(PoolConfig {
        slots: 2,
        max_wait: Duration::from_millis(5),
        ..PoolConfig::default()
    });

    // Raw lease: the typed error names the pressure.
    faults::arm_sites([Site::PoolSlotExhausted]);
    let layout = winrs_core::WorkspaceLayout::accounting("exhausted", 0);
    let err = pool
        .lease_for(&layout, Duration::from_millis(5))
        .map(|_| ())
        .expect_err("feigned-full pool must refuse");
    assert!(matches!(err, WinrsError::PoolExhausted { slots: 2, .. }), "{err}");
    assert!(err.recoverable_by_degradation());

    // Dispatched: Auto rides the ladder to a bitwise-clean substitute.
    let (dw, report) = handle(&pool).run(&conv, &x, &dy).expect("Auto degrades");
    assert_eq!(end_campaign(), vec![Site::PoolSlotExhausted]);
    assert_eq!(report.algorithm, Algorithm::GemmBfc);
    assert!(
        matches!(report.fallback_reason, Some(WinrsError::PoolExhausted { .. })),
        "{:?}",
        report.fallback_reason
    );
    let st = report.pool.expect("pool snapshot");
    assert!(st.exhausted >= 2, "{st}");
    assert_eq!(st.poisonings, 0, "exhaustion dirties nothing: {st}");
    let (dw_ref, _) = handle(&pool)
        .with_policy(FallbackPolicy::Force(Algorithm::GemmBfc))
        .run(&conv, &x, &dy)
        .expect("clean reference");
    assert_eq!(dw, dw_ref);
    assert!(mare(&dw, &exact) < 1e-5);
    assert_pool_clean(&pool);
}

/// Campaign 3 — deadline expiry under injected slowness. This seed used
/// to *pass* with the compounding behaviour (each ladder rung opened a
/// fresh deadline window, so a 5 ms deadline burned ~2× the injected
/// slowness before direct delivered); replayed against the shared-budget
/// semantics it must instead refuse fast with a typed error naming the
/// rung that could not start — the old outcome (an `Ok` direct result
/// after rungs× the window) is the failing case.
#[test]
fn deadline_expiry_refuses_fast_with_shared_budget() {
    let _g = faults::serial_guard();
    let (conv, x, dy, _) = problem();
    let pool = WorkspacePool::with_slots(1);

    let slow = Duration::from_millis(25);
    faults::arm_sites([Site::SlowBlockLoop]);
    faults::set_slow_ms(slow.as_millis() as u64);
    let t0 = std::time::Instant::now();
    let err = handle(&pool)
        .with_deadline(Some(Duration::from_millis(5)))
        .run(&conv, &x, &dy)
        .map(|(_, r)| r.algorithm)
        .expect_err("an expired shared budget refuses every rung");
    let elapsed = t0.elapsed();
    assert_eq!(end_campaign(), vec![Site::SlowBlockLoop]);

    match err {
        WinrsError::DeadlineExceeded { rung, .. } => {
            assert_eq!(rung, Some("gemm-bfc"), "names the rung reached");
        }
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
    // One injected slowness, not one per rung: the pre-fix ladder paid
    // the slow site again on the degradation path before delivering.
    assert!(
        elapsed < slow * 2,
        "budget compounded across rungs again: {elapsed:?}"
    );
    // The ladder was entered once and refused — no second rung ran.
    assert_eq!(pool.stats().degradations, 1);
    assert_pool_clean(&pool);

    // A comfortable deadline with the same slowness still runs WinRS.
    faults::arm_sites([Site::SlowBlockLoop]);
    faults::set_slow_ms(2);
    let (dw_ok, report_ok) = handle(&pool)
        .with_deadline(Some(Duration::from_secs(30)))
        .run(&conv, &x, &dy)
        .expect("slowness within budget is not a failure");
    assert_eq!(end_campaign(), vec![Site::SlowBlockLoop]);
    assert_eq!(report_ok.algorithm, Algorithm::WinRs);
    let (dw_clean, _) = handle(&pool).run(&conv, &x, &dy).expect("clean run");
    assert_eq!(dw_ok, dw_clean, "slowness changed the numerics");
    assert_pool_clean(&pool);
}

/// Campaign 4 — allocation-budget refusal. The lease's arena growth is
/// denied; the untouched slot returns to the pool and the caller gets the
/// typed workspace violation (a caller-side contract error, deliberately
/// not degradable — degradation is for runtime misfortune, not for
/// budgets the caller set).
#[test]
fn allocation_budget_refusal_is_typed_and_leaves_pool_clean() {
    let _g = faults::serial_guard();
    let (conv, x, dy, _) = problem();
    let pool = WorkspacePool::with_slots(1);

    faults::arm_sites([Site::AllocBudget]);
    let err = handle(&pool)
        .run(&conv, &x, &dy)
        .map(|_| ())
        .expect_err("refused allocation is a typed error");
    assert_eq!(end_campaign(), vec![Site::AllocBudget]);
    assert!(matches!(err, WinrsError::ExecutionRejected(_)), "{err}");
    assert!(!err.violations().is_empty());
    let st = pool.stats();
    assert_eq!(st.poisonings, 0, "refusal dirties nothing: {st}");
    assert_pool_clean(&pool);

    // Disarmed, the same handle and pool immediately work again.
    let (dw, report) = handle(&pool).run(&conv, &x, &dy).expect("recovered");
    assert_eq!(report.algorithm, Algorithm::WinRs);
    assert!(dw.as_slice().iter().all(|v| v.is_finite()));
    assert_pool_clean(&pool);
}

/// Seed-replay determinism: the same campaign seed arms the same sites,
/// fires the same injections, and produces a bit-identical outcome —
/// twice over. This is what makes a chaos failure reportable as one u64.
#[test]
fn campaigns_replay_bit_identically() {
    let _g = faults::serial_guard();
    let (conv, x, dy, _) = problem();
    let seed = 0xC0FFEE;

    let mut runs = Vec::new();
    for _ in 0..2 {
        let c = faults::campaign(seed);
        let description = c.to_string();
        c.arm();
        let pool = WorkspacePool::with_slots(2);
        let outcome = handle(&pool)
            .with_guard(NumericGuard::PromoteAndRetry)
            .run(&conv, &x, &dy);
        let fired = end_campaign();
        assert_pool_clean(&pool);
        runs.push((description, fired, outcome.map(|(dw, r)| (dw, r.algorithm))));
    }
    let (d1, f1, o1) = &runs[0];
    let (d2, f2, o2) = &runs[1];
    assert_eq!(d1, d2, "campaign description must replay");
    assert_eq!(f1, f2, "fired sites must replay");
    match (o1, o2) {
        (Ok((dw1, alg1)), Ok((dw2, alg2))) => {
            assert_eq!(alg1, alg2, "replay picked a different ladder rung");
            assert_eq!(dw1, dw2, "replay is not bit-identical");
        }
        (Err(e1), Err(e2)) => assert_eq!(e1.stage(), e2.stage(), "{e1} vs {e2}"),
        (a, b) => panic!("outcomes diverged across replay: {a:?} vs {b:?}"),
    }
}

/// The sweep: a dozen seeded campaigns, every primary injection site
/// covered (the campaign space guarantees it within 12 consecutive
/// seeds). Each run ends in a bitwise-correct `∇W` — equal to a clean
/// chaos-free dispatch of whatever algorithm delivered — or a typed
/// error, with the pool fully leasable and counter-coherent after every
/// seed.
#[test]
fn seeded_campaign_sweep_always_contains_the_failure() {
    let _g = faults::serial_guard();
    let (conv, x, dy, exact) = problem();
    let mut outcomes = (0usize, 0usize); // (ok, typed-error)

    for seed in 0..12u64 {
        let c = faults::campaign(seed);
        c.arm();
        let pool = WorkspacePool::new(PoolConfig {
            slots: 2,
            // Small wait so feigned-exhaustion seeds fail fast.
            max_wait: Duration::from_millis(5),
            ..PoolConfig::default()
        });
        let result = handle(&pool)
            .with_guard(NumericGuard::PromoteAndRetry)
            .run(&conv, &x, &dy);
        let fired = end_campaign();
        assert!(
            !fired.is_empty(),
            "seed {seed}: campaign {c} never reached its injection site"
        );

        match result {
            Ok((dw, report)) => {
                // Bitwise-correct: clean rerun of the delivering rung.
                let clean = handle(&pool).with_guard(NumericGuard::PromoteAndRetry);
                let (dw_ref, _) = match report.algorithm {
                    Algorithm::WinRs => clean.run(&conv, &x, &dy),
                    alg => clean.with_policy(FallbackPolicy::Force(alg)).run(&conv, &x, &dy),
                }
                .expect("clean reference run");
                assert_eq!(
                    dw, dw_ref,
                    "seed {seed}: chaos changed the bits of a {:?} result",
                    report.algorithm
                );
                assert!(mare(&dw, &exact) < 1e-4, "seed {seed}");
                outcomes.0 += 1;
            }
            Err(err) => {
                // Typed, never an escaped panic (a panic would have
                // already failed the test harness).
                assert!(!err.stage().is_empty(), "seed {seed}: {err}");
                outcomes.1 += 1;
            }
        }
        assert_pool_clean(&pool);
    }
    // The campaign space covers both terminal outcomes.
    assert!(outcomes.0 > 0, "no campaign delivered a ∇W: {outcomes:?}");
    assert!(outcomes.1 > 0, "no campaign surfaced a typed error: {outcomes:?}");
}

/// Satellite 4 — `PromoteAndRetry` under concurrent execution over one
/// shared pool: FP16 runs that overflow (and repair via per-segment
/// promotion) on multiple threads at once must keep guard counters and
/// `MemoryFootprint.peak` coherent per report, repair every thread's
/// result, and leave the shared pool clean.
#[test]
fn concurrent_promote_and_retry_shares_the_pool_coherently() {
    // Holds the guard even though nothing is armed: a concurrent chaos
    // test would otherwise inject into these runs.
    let _g = faults::serial_guard();
    const THREADS: usize = 3;

    // The overflow-prone FP16 problem from the fallback suite: big ∇Y
    // saturates binary16 tiles, PromoteAndRetry reruns them in FP32.
    let conv = ConvShape::square(1, 12, 2, 2, 3);
    let x64 = Tensor4::<f64>::random_uniform([1, 12, 12, 2], 51, 1.0);
    let dy64 = Tensor4::<f64>::random_uniform([1, 12, 12, 2], 52, 6.0e4);
    let exact = direct::bfc_direct(&conv, &x64, &dy64);
    let x: Tensor4<f32> = x64.cast();
    let dy: Tensor4<f32> = dy64.cast();

    let pool = WorkspacePool::with_slots(2);
    let shared = ExecHandle::new(Arc::clone(&pool), RTX_4090, Precision::Fp16)
        .with_guard(NumericGuard::PromoteAndRetry);

    let results: Vec<_> = std::thread::scope(|s| {
        (0..THREADS)
            .map(|_| {
                let h = shared.clone();
                let (conv, x, dy) = (&conv, &x, &dy);
                s.spawn(move || h.run(conv, x, dy).expect("guarded run"))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().expect("no escaped panic"))
            .collect()
    });

    // Single-threaded reference for the guard counters.
    let (dw_ref, report_ref) = fallback::run_bfc(
        &conv,
        &RTX_4090,
        Precision::Fp16,
        &x,
        &dy,
        FallbackPolicy::Auto,
        NumericGuard::PromoteAndRetry,
    )
    .expect("reference");
    assert!(report_ref.promoted_buckets > 0, "problem must actually overflow");

    for (dw, report) in &results {
        assert_eq!(report.algorithm, Algorithm::WinRs);
        // Guard counters are per-report, not smeared across threads.
        assert_eq!(report.promoted_buckets, report_ref.promoted_buckets);
        assert_eq!(report.promoted_segments, report_ref.promoted_segments);
        assert_eq!(dw, &dw_ref, "concurrent promoted run diverged bitwise");
        assert!(mare(dw, &exact) < 1e-1);
        // Footprint stays coherent under sharing: peak covers the plan.
        assert!(report.mem.workspace_bytes_peak >= report.mem.workspace_bytes_planned);
        assert_eq!(report.mem.hot_loop_allocs, 0);
    }
    let st = pool.stats();
    assert_eq!(st.leases, THREADS as u64, "{st}");
    assert_eq!(st.poisonings, 0, "{st}");
    assert_pool_clean(&pool);
}
