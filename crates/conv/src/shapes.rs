//! Convolutional-layer shape arithmetic (paper Table 1).

use crate::error::{ShapeError, ShapeViolation};

/// Shape of one convolutional layer, stride 1.
///
/// All three gradient computations (FC, BDC, BFC) of the layer share these
/// parameters. The spatial relationship is `O = I + 2p − F + 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvShape {
    /// Batch size `N`.
    pub n: usize,
    /// Input height `I_H`.
    pub ih: usize,
    /// Input width `I_W`.
    pub iw: usize,
    /// Input channels `I_C`.
    pub ic: usize,
    /// Output channels `O_C`.
    pub oc: usize,
    /// Filter height `F_H`.
    pub fh: usize,
    /// Filter width `F_W`.
    pub fw: usize,
    /// Zero padding along height, `p_H`.
    pub ph: usize,
    /// Zero padding along width, `p_W`.
    pub pw: usize,
}

impl ConvShape {
    /// Construct and validate. Panics if the output would be empty.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        ih: usize,
        iw: usize,
        ic: usize,
        oc: usize,
        fh: usize,
        fw: usize,
        ph: usize,
        pw: usize,
    ) -> ConvShape {
        let s = ConvShape {
            n,
            ih,
            iw,
            ic,
            oc,
            fh,
            fw,
            ph,
            pw,
        };
        assert!(
            ih + 2 * ph + 1 > fh && iw + 2 * pw + 1 > fw,
            "filter larger than padded input: {s:?}"
        );
        assert!(n > 0 && ic > 0 && oc > 0 && fh > 0 && fw > 0);
        s
    }

    /// Construct with full validation, reporting *every* violated
    /// invariant. This is the entry point for externally supplied problem
    /// descriptions (CLI flags, config files); [`ConvShape::new`] keeps
    /// the panicking contract for shapes known-good by construction.
    #[allow(clippy::too_many_arguments)]
    pub fn try_new(
        n: usize,
        ih: usize,
        iw: usize,
        ic: usize,
        oc: usize,
        fh: usize,
        fw: usize,
        ph: usize,
        pw: usize,
    ) -> Result<ConvShape, ShapeError> {
        let s = ConvShape {
            n,
            ih,
            iw,
            ic,
            oc,
            fh,
            fw,
            ph,
            pw,
        };
        match s.violations() {
            v if v.is_empty() => Ok(s),
            violations => Err(ShapeError { violations }),
        }
    }

    /// Collect every violated shape invariant (empty when valid).
    pub fn violations(&self) -> Vec<ShapeViolation> {
        let mut v = Vec::new();
        for (name, value) in [
            ("n", self.n),
            ("ih", self.ih),
            ("iw", self.iw),
            ("ic", self.ic),
            ("oc", self.oc),
            ("fh", self.fh),
            ("fw", self.fw),
        ] {
            if value == 0 {
                v.push(ShapeViolation::ZeroDim { name });
            }
        }
        // Only meaningful when the participating dims are non-zero; with
        // fh = 0 the subtraction in oh() is ill-defined anyway.
        if self.fh > 0 && self.ih + 2 * self.ph < self.fh {
            v.push(ShapeViolation::FilterExceedsPaddedInput {
                axis: "height",
                filter: self.fh,
                input: self.ih,
                pad: self.ph,
            });
        }
        if self.fw > 0 && self.iw + 2 * self.pw < self.fw {
            v.push(ShapeViolation::FilterExceedsPaddedInput {
                axis: "width",
                filter: self.fw,
                input: self.iw,
                pad: self.pw,
            });
        }
        v
    }

    /// "Same"-style shape: square feature map `res×res`, square filter
    /// `f×f`, padding `⌊f/2⌋` — the common CNN layer configuration used
    /// throughout the paper's sweep.
    pub fn square(n: usize, res: usize, ic: usize, oc: usize, f: usize) -> ConvShape {
        ConvShape::new(n, res, res, ic, oc, f, f, f / 2, f / 2)
    }

    /// Output-gradient height `O_H = I_H + 2p_H − F_H + 1`.
    pub fn oh(&self) -> usize {
        self.ih + 2 * self.ph + 1 - self.fh
    }

    /// Output-gradient width `O_W = I_W + 2p_W − F_W + 1`.
    pub fn ow(&self) -> usize {
        self.iw + 2 * self.pw + 1 - self.fw
    }

    /// Elements of `X`.
    pub fn x_elems(&self) -> usize {
        self.n * self.ih * self.iw * self.ic
    }

    /// Elements of `∇Y`.
    pub fn dy_elems(&self) -> usize {
        self.n * self.oh() * self.ow() * self.oc
    }

    /// Elements of `∇W`.
    pub fn dw_elems(&self) -> usize {
        self.oc * self.fh * self.fw * self.ic
    }

    /// Total data size (X + ∇Y + ∇W) in bytes at `elem_bytes` per element —
    /// the denominator of the paper's "workspace / data size" ratios.
    pub fn data_bytes(&self, elem_bytes: usize) -> usize {
        (self.x_elems() + self.dy_elems() + self.dw_elems()) * elem_bytes
    }

    /// Direct-convolution FLOPs of the BFC (`2·O_C·F_H·F_W·I_C·O_H·O_W·N`,
    /// the paper's §6.2 throughput numerator). FC and BDC have the same
    /// count at stride 1.
    pub fn bfc_flops(&self) -> u64 {
        2 * self.oc as u64
            * self.fh as u64
            * self.fw as u64
            * self.ic as u64
            * self.oh() as u64
            * self.ow() as u64
            * self.n as u64
    }

    /// Accumulation length `N·O_H·O_W` per `∇W` element (x-axis of paper
    /// Figure 12C).
    pub fn accumulation_length(&self) -> usize {
        self.n * self.oh() * self.ow()
    }

    /// The 2nd convolutional layer of VGG16 at batch 32 — the paper's
    /// running example (Figures 1 and 2): 3×3 filters, 224×224 maps, 64
    /// channels.
    pub fn vgg16_conv2(batch: usize) -> ConvShape {
        ConvShape::square(batch, 224, 64, 64, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_padding_preserves_resolution() {
        let s = ConvShape::square(32, 224, 64, 64, 3);
        assert_eq!(s.oh(), 224);
        assert_eq!(s.ow(), 224);
    }

    #[test]
    fn even_filter_shrinks_map() {
        let s = ConvShape::square(1, 32, 8, 8, 4); // pad 2
        assert_eq!(s.oh(), 32 + 4 + 1 - 4);
    }

    #[test]
    fn vgg16_conv2_matches_figure1() {
        // Figure 1: FC/BDC have 3×3 filters and 224×224 outputs; BFC has
        // 224×224 "filters" (∇Y) and 3×3 outputs (∇W).
        let s = ConvShape::vgg16_conv2(32);
        assert_eq!((s.fh, s.fw), (3, 3));
        assert_eq!((s.oh(), s.ow()), (224, 224));
        assert_eq!(s.dw_elems(), 64 * 3 * 3 * 64);
    }

    #[test]
    fn flops_formula() {
        let s = ConvShape::new(2, 5, 5, 3, 4, 2, 2, 0, 0);
        // oh = ow = 4.
        assert_eq!(s.bfc_flops(), 2 * 4 * 2 * 2 * 3 * 4 * 4 * 2);
    }

    #[test]
    fn data_bytes_sums_three_tensors() {
        let s = ConvShape::new(1, 4, 4, 2, 3, 3, 3, 1, 1);
        let want = (s.x_elems() + s.dy_elems() + s.dw_elems()) * 4;
        assert_eq!(s.data_bytes(4), want);
    }

    #[test]
    #[should_panic(expected = "filter larger")]
    fn oversized_filter_rejected() {
        let _ = ConvShape::new(1, 2, 2, 1, 1, 5, 5, 0, 0);
    }

    #[test]
    fn try_new_accepts_valid_shape() {
        let s = ConvShape::try_new(2, 16, 16, 4, 4, 3, 3, 1, 1).unwrap();
        assert_eq!(s, ConvShape::square(2, 16, 4, 4, 3));
    }

    #[test]
    fn try_new_reports_every_violation_at_once() {
        // Zero batch, zero channels, AND an oversized filter: all four
        // problems must be reported together, not just the first.
        let err = ConvShape::try_new(0, 2, 2, 0, 1, 5, 5, 0, 0).unwrap_err();
        assert_eq!(err.violations.len(), 4, "{err}");
        assert!(err
            .violations
            .contains(&ShapeViolation::ZeroDim { name: "n" }));
        assert!(err
            .violations
            .contains(&ShapeViolation::ZeroDim { name: "ic" }));
        assert!(err.violations.iter().any(|v| matches!(
            v,
            ShapeViolation::FilterExceedsPaddedInput { axis: "height", .. }
        )));
        assert!(err.violations.iter().any(|v| matches!(
            v,
            ShapeViolation::FilterExceedsPaddedInput { axis: "width", .. }
        )));
        let msg = err.to_string();
        assert!(msg.contains("`n`") && msg.contains("height"), "{msg}");
    }

    #[test]
    fn try_new_rejects_filter_taller_than_padded_input() {
        let err = ConvShape::try_new(1, 4, 16, 1, 1, 7, 3, 1, 1).unwrap_err();
        assert_eq!(err.violations.len(), 1);
        assert!(matches!(
            err.violations[0],
            ShapeViolation::FilterExceedsPaddedInput {
                axis: "height",
                filter: 7,
                input: 4,
                pad: 1,
            }
        ));
    }

    #[test]
    fn accumulation_length_formula() {
        let s = ConvShape::square(32, 224, 64, 64, 3);
        assert_eq!(s.accumulation_length(), 32 * 224 * 224);
        assert!(s.accumulation_length() >= 1 << 18); // "early layer" regime
    }
}
