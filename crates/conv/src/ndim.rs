//! N-dimensional (3D) backward-filter convolution — reference
//! implementation for the paper's Level-2 extension claim.
//!
//! §3 Level 2: "WinRS reduces ∇Y(z) into 1D filters, enabling
//! straightforward extension to N-D BFC". This module provides the 3D
//! problem shape and the direct (oracle) 3D BFC the extension is verified
//! against; the WinRS-side implementation lives in `winrs-core::ndim`.
//!
//! Layouts follow the 2D convention with one more spatial axis:
//! `X ∈ ℝ^{N×I_D×I_H×I_W×I_C}`, `∇Y ∈ ℝ^{N×O_D×O_H×O_W×O_C}`,
//! `∇W ∈ ℝ^{O_C×F_D×F_H×F_W×I_C}`.

use rayon::prelude::*;
use winrs_tensor::{Scalar, TensorN};

/// Shape of a 3D convolutional layer, stride 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv3dShape {
    /// Batch size.
    pub n: usize,
    /// Input depth/height/width.
    pub id: usize,
    /// Input height.
    pub ih: usize,
    /// Input width.
    pub iw: usize,
    /// Input channels.
    pub ic: usize,
    /// Output channels.
    pub oc: usize,
    /// Filter depth.
    pub fd: usize,
    /// Filter height.
    pub fh: usize,
    /// Filter width.
    pub fw: usize,
    /// Padding along depth.
    pub pd: usize,
    /// Padding along height.
    pub ph: usize,
    /// Padding along width.
    pub pw: usize,
}

impl Conv3dShape {
    /// Cubic "same"-style shape.
    pub fn cube(n: usize, res: usize, ic: usize, oc: usize, f: usize) -> Conv3dShape {
        Conv3dShape {
            n,
            id: res,
            ih: res,
            iw: res,
            ic,
            oc,
            fd: f,
            fh: f,
            fw: f,
            pd: f / 2,
            ph: f / 2,
            pw: f / 2,
        }
    }

    /// Output depth.
    pub fn od(&self) -> usize {
        self.id + 2 * self.pd + 1 - self.fd
    }

    /// Output height.
    pub fn oh(&self) -> usize {
        self.ih + 2 * self.ph + 1 - self.fh
    }

    /// Output width.
    pub fn ow(&self) -> usize {
        self.iw + 2 * self.pw + 1 - self.fw
    }

    /// `X` dims.
    pub fn x_dims(&self) -> Vec<usize> {
        vec![self.n, self.id, self.ih, self.iw, self.ic]
    }

    /// `∇Y` dims.
    pub fn dy_dims(&self) -> Vec<usize> {
        vec![self.n, self.od(), self.oh(), self.ow(), self.oc]
    }

    /// `∇W` dims.
    pub fn dw_dims(&self) -> Vec<usize> {
        vec![self.oc, self.fd, self.fh, self.fw, self.ic]
    }

    /// Direct BFC FLOPs.
    pub fn bfc_flops(&self) -> u64 {
        2 * (self.oc * self.fd * self.fh * self.fw * self.ic) as u64
            * (self.od() * self.oh() * self.ow() * self.n) as u64
    }
}

/// Direct 3D BFC: `∇W[oc,fd,fh,fw,ic] = Σ_{n,od,oh,ow}
/// X[n, fd+od−p_D, fh+oh−p_H, fw+ow−p_W, ic] · ∇Y[n,od,oh,ow,oc]`.
pub fn bfc3d_direct<T: Scalar>(
    shape: &Conv3dShape,
    x: &TensorN<T>,
    dy: &TensorN<T>,
) -> TensorN<T> {
    assert_eq!(x.dims(), &shape.x_dims()[..]);
    assert_eq!(dy.dims(), &shape.dy_dims()[..]);
    let (od, oh, ow) = (shape.od(), shape.oh(), shape.ow());
    let mut dw = TensorN::<T>::zeros(&shape.dw_dims());
    let per_oc = shape.fd * shape.fh * shape.fw * shape.ic;
    dw.as_mut_slice()
        .par_chunks_mut(per_oc)
        .enumerate()
        .for_each(|(c_out, dwo)| {
            for a in 0..shape.fd {
                for b in 0..shape.fh {
                    for c in 0..shape.fw {
                        for c_in in 0..shape.ic {
                            let mut acc = T::ZERO;
                            for n in 0..shape.n {
                                for zd in 0..od {
                                    for i in 0..oh {
                                        for j in 0..ow {
                                            let xs = [
                                                (a + zd) as isize - shape.pd as isize,
                                                (b + i) as isize - shape.ph as isize,
                                                (c + j) as isize - shape.pw as isize,
                                            ];
                                            acc += x.get_padded(n, &xs, c_in)
                                                * dy.get(&[n, zd, i, j, c_out]);
                                        }
                                    }
                                }
                            }
                            dwo[((a * shape.fh + b) * shape.fw + c) * shape.ic + c_in] = acc;
                        }
                    }
                }
            }
        });
    dw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_arithmetic() {
        let s = Conv3dShape::cube(2, 8, 3, 4, 3);
        assert_eq!((s.od(), s.oh(), s.ow()), (8, 8, 8));
        assert_eq!(s.dw_dims(), vec![4, 3, 3, 3, 3]);
    }

    #[test]
    fn all_ones_counts_positions() {
        // No padding: every ∇W element sums N·O_D·O_H·O_W ones.
        let s = Conv3dShape {
            n: 2,
            id: 4,
            ih: 4,
            iw: 4,
            ic: 1,
            oc: 1,
            fd: 2,
            fh: 2,
            fw: 2,
            pd: 0,
            ph: 0,
            pw: 0,
        };
        let mut x = TensorN::<f64>::zeros(&s.x_dims());
        x.as_mut_slice().fill(1.0);
        let mut dy = TensorN::<f64>::zeros(&s.dy_dims());
        dy.as_mut_slice().fill(1.0);
        let dw = bfc3d_direct(&s, &x, &dy);
        let want = (2 * 3 * 3 * 3) as f64;
        assert!(dw.as_slice().iter().all(|&v| v == want));
    }

    #[test]
    fn reduces_to_2d_when_depth_is_trivial() {
        // F_D = 1, I_D = 1: the 3D BFC must equal the 2D BFC on the slice.
        let s3 = Conv3dShape {
            n: 1,
            id: 1,
            ih: 6,
            iw: 6,
            ic: 2,
            oc: 2,
            fd: 1,
            fh: 3,
            fw: 3,
            pd: 0,
            ph: 1,
            pw: 1,
        };
        let x3 = TensorN::<f64>::random_uniform(&s3.x_dims(), 1, 1.0);
        let dy3 = TensorN::<f64>::random_uniform(&s3.dy_dims(), 2, 1.0);
        let dw3 = bfc3d_direct(&s3, &x3, &dy3);

        let s2 = crate::ConvShape::new(1, 6, 6, 2, 2, 3, 3, 1, 1);
        let x2 = winrs_tensor::Tensor4::<f64>::from_vec(
            [1, 6, 6, 2],
            x3.as_slice().to_vec(),
        );
        let dy2 = winrs_tensor::Tensor4::<f64>::from_vec(
            [1, 6, 6, 2],
            dy3.as_slice().to_vec(),
        );
        let dw2 = crate::direct::bfc_direct(&s2, &x2, &dy2);
        for (a, b) in dw3.as_slice().iter().zip(dw2.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
