//! Typed shape-validation errors.
//!
//! [`crate::ConvShape::new`] keeps its historical panicking contract for
//! internal construction of shapes that are known-good by context (tests,
//! sweeps over curated layer tables). Everything reachable from user input
//! — the CLI, config files, library callers validating external problem
//! descriptions — goes through [`crate::ConvShape::try_new`], which
//! reports *every* violated invariant at once instead of stopping at the
//! first.

use std::fmt;

/// One violated invariant of a convolution problem description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShapeViolation {
    /// A dimension that must be ≥ 1 was zero.
    ZeroDim {
        /// Parameter name as the user knows it (`n`, `ic`, `oc`, …).
        name: &'static str,
    },
    /// The filter does not fit inside the padded input along one axis, so
    /// the output would be empty.
    FilterExceedsPaddedInput {
        /// `"height"` or `"width"`.
        axis: &'static str,
        /// Filter extent along the axis.
        filter: usize,
        /// Input extent along the axis.
        input: usize,
        /// Zero padding along the axis.
        pad: usize,
    },
    /// A stride or dilation that must be ≥ 1 was zero.
    ZeroStrideOrDilation {
        /// Parameter name (`stride_h`, `dilation_w`, …).
        name: &'static str,
    },
}

impl fmt::Display for ShapeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeViolation::ZeroDim { name } => {
                write!(f, "dimension `{name}` must be at least 1")
            }
            ShapeViolation::FilterExceedsPaddedInput {
                axis,
                filter,
                input,
                pad,
            } => write!(
                f,
                "filter {axis} {filter} exceeds padded input {axis} \
                 {input} + 2×{pad} (output would be empty)"
            ),
            ShapeViolation::ZeroStrideOrDilation { name } => {
                write!(f, "`{name}` must be at least 1")
            }
        }
    }
}

/// A rejected shape: the complete list of violated invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShapeError {
    /// Every violation found, in field order. Never empty.
    pub violations: Vec<ShapeViolation>,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid convolution shape ({}): ", self.violations.len())?;
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ShapeError {}
