//! FFT-based BFC: the `Cu-FFT` baseline analogue.
//!
//! Classic four-stage, non-fused FFT convolution (paper §2.1):
//!
//! 1. forward-transform every padded input plane `X[n, :, :, ic]`
//!    (`N·I_C` 2D FFTs, all spectra kept in workspace);
//! 2. forward-transform every output-gradient plane `∇Y[n, :, :, oc]`
//!    (`N·O_C` more spectra, also kept);
//! 3. element-wise multiply–accumulate spectra over the batch for every
//!    `(oc, ic)` pair;
//! 4. inverse-transform the `O_C·I_C` product spectra and extract the
//!    `F_H × F_W` valid region.
//!
//! Caching the spectra is what makes the FFT approach fast *and* what makes
//! its workspace enormous — Table 2 reports 3.1×–30.4× the data size for
//! Cu-FFT, and [`workspace_bytes`] reproduces that blow-up mechanically
//! (padded complex spectra for every channel of every tensor).
//!
//! Transforms run in f64 (cuFFT accumulates in higher precision than the
//! I/O type); the result is rounded to the caller's precision at the end.

use crate::ConvShape;
use rayon::prelude::*;
use winrs_fft::{fft_pow2, ifft_pow2, next_pow2, Complex};
use winrs_tensor::{Scalar, Tensor4};

/// FFT plan dimensions for one shape: padded spatial size and the
/// power-of-two transform size that avoids circular wrap. Used by the
/// *execution* path (our radix-2 substrate).
fn plan(shape: &ConvShape) -> (usize, usize, usize, usize) {
    let xh = shape.ih + 2 * shape.ph;
    let xw = shape.iw + 2 * shape.pw;
    let mh = next_pow2(xh + shape.oh() - 1);
    let mw = next_pow2(xw + shape.ow() - 1);
    (xh, xw, mh, mw)
}

/// Smallest 5-smooth number `≥ n` — the transform sizes a mixed-radix FFT
/// library (cuFFT) actually plans, used by the *cost model* so that
/// workspace/FLOP/traffic accounting is not inflated by our radix-2
/// substrate's power-of-two padding.
pub fn smooth_size(n: usize) -> usize {
    let cap = n.next_power_of_two();
    let mut best = cap;
    let mut a = 1usize;
    while a <= cap {
        let mut b = a;
        while b <= cap {
            let mut c = b;
            while c <= cap {
                if c >= n && c < best {
                    best = c;
                }
                c *= 5;
            }
            b *= 3;
        }
        a *= 2;
    }
    best
}

/// Cost-model plan with mixed-radix sizes.
fn smooth_plan(shape: &ConvShape) -> (usize, usize) {
    let xh = shape.ih + 2 * shape.ph;
    let xw = shape.iw + 2 * shape.pw;
    (
        smooth_size(xh + shape.oh() - 1),
        smooth_size(xw + shape.ow() - 1),
    )
}

fn fft2(buf: &mut [Complex], mh: usize, mw: usize, inverse: bool) {
    for i in 0..mh {
        let row = &mut buf[i * mw..(i + 1) * mw];
        if inverse {
            ifft_pow2(row);
        } else {
            fft_pow2(row, false);
        }
    }
    let mut col = vec![Complex::ZERO; mh];
    for j in 0..mw {
        for i in 0..mh {
            col[i] = buf[i * mw + j];
        }
        if inverse {
            ifft_pow2(&mut col);
        } else {
            fft_pow2(&mut col, false);
        }
        for i in 0..mh {
            buf[i * mw + j] = col[i];
        }
    }
}

/// BFC via cached-spectra FFT convolution.
pub fn bfc_fft<T: Scalar>(shape: &ConvShape, x: &Tensor4<T>, dy: &Tensor4<T>) -> Tensor4<T> {
    let (oh, ow) = (shape.oh(), shape.ow());
    assert_eq!(x.dims(), [shape.n, shape.ih, shape.iw, shape.ic]);
    assert_eq!(dy.dims(), [shape.n, oh, ow, shape.oc]);
    let (_, _, mh, mw) = plan(shape);
    let m = mh * mw;

    // Stage 1: spectra of padded inputs, one per (n, ic).
    let x_spec: Vec<Vec<Complex>> = (0..shape.n * shape.ic)
        .into_par_iter()
        .map(|idx| {
            let (n, c_in) = (idx / shape.ic, idx % shape.ic);
            let mut buf = vec![Complex::ZERO; m];
            for i in 0..shape.ih {
                for j in 0..shape.iw {
                    buf[(i + shape.ph) * mw + (j + shape.pw)] =
                        Complex::real(x[(n, i, j, c_in)].to_f64());
                }
            }
            fft2(&mut buf, mh, mw, false);
            buf
        })
        .collect();

    // Stage 2: spectra of reversed output gradients, one per (n, oc)
    // (reversal turns the circular convolution into a correlation).
    let dy_spec: Vec<Vec<Complex>> = (0..shape.n * shape.oc)
        .into_par_iter()
        .map(|idx| {
            let (n, c_out) = (idx / shape.oc, idx % shape.oc);
            let mut buf = vec![Complex::ZERO; m];
            for i in 0..oh {
                for j in 0..ow {
                    buf[(oh - 1 - i) * mw + (ow - 1 - j)] =
                        Complex::real(dy[(n, i, j, c_out)].to_f64());
                }
            }
            fft2(&mut buf, mh, mw, false);
            buf
        })
        .collect();

    // Stages 3 + 4: per (oc, ic), batch-accumulate products and invert.
    let mut dw = Tensor4::<T>::zeros([shape.oc, shape.fh, shape.fw, shape.ic]);
    let per_oc = shape.fh * shape.fw * shape.ic;
    dw.as_mut_slice()
        .par_chunks_mut(per_oc)
        .enumerate()
        .for_each(|(c_out, dwo)| {
            let mut acc = vec![Complex::ZERO; m];
            for c_in in 0..shape.ic {
                acc.fill(Complex::ZERO);
                for n in 0..shape.n {
                    let xs = &x_spec[n * shape.ic + c_in];
                    let ys = &dy_spec[n * shape.oc + c_out];
                    for k in 0..m {
                        acc[k] += xs[k] * ys[k];
                    }
                }
                fft2(&mut acc, mh, mw, true);
                // Valid region of the correlation starts at (oh−1, ow−1).
                for a in 0..shape.fh {
                    for b in 0..shape.fw {
                        let v = acc[(oh - 1 + a) * mw + (ow - 1 + b)].re;
                        dwo[(a * shape.fw + b) * shape.ic + c_in] = T::from_f64(v);
                    }
                }
            }
        });
    dw
}

/// Workspace bytes: all cached spectra (complex, 8 bytes at f32 complex —
/// matching cuFFT's C2C single-precision plans) at mixed-radix transform
/// sizes.
pub fn workspace_bytes(shape: &ConvShape) -> usize {
    let (mh, mw) = smooth_plan(shape);
    let spectra = shape.n * (shape.ic + shape.oc) + shape.oc * shape.ic;
    spectra * mh * mw * 8
}

/// Modelled FLOPs: `5·M·log₂M` per 2D transform (the standard FFT cost) for
/// every cached spectrum and inverse, plus `8` real ops per complex MAC in
/// stage 3, at mixed-radix sizes.
pub fn flops(shape: &ConvShape) -> u64 {
    let (mh, mw) = smooth_plan(shape);
    let m = (mh * mw) as u64;
    let log_m = (m as f64).log2().ceil() as u64;
    let fwd = (shape.n * (shape.ic + shape.oc)) as u64;
    let inv = (shape.oc * shape.ic) as u64;
    let transforms = (fwd + inv) * 5 * m * log_m;
    let ewm = 8 * (shape.n * shape.oc * shape.ic) as u64 * m;
    transforms + ewm
}

/// Intermediate traffic: each spectrum written once and re-read once —
/// stage 3 is tiled over channel blocks so spectra are reused from cache
/// within a tile (the batched-GEMM structure cuFFT convolution uses).
pub fn intermediate_traffic_bytes(shape: &ConvShape) -> u64 {
    2 * workspace_bytes(shape) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use winrs_tensor::mare;

    fn check(shape: ConvShape, tol: f64) {
        let x = Tensor4::<f64>::random_uniform([shape.n, shape.ih, shape.iw, shape.ic], 51, 1.0);
        let dy =
            Tensor4::<f64>::random_uniform([shape.n, shape.oh(), shape.ow(), shape.oc], 52, 1.0);
        let exact = direct::bfc_direct(&shape, &x, &dy);
        let got = bfc_fft(&shape, &x, &dy);
        let m = mare(&got, &exact);
        assert!(m < tol, "{shape:?}: MARE {m}");
    }

    #[test]
    fn matches_direct_3x3_padded() {
        check(ConvShape::new(2, 8, 8, 2, 3, 3, 3, 1, 1), 1e-10);
    }

    #[test]
    fn matches_direct_5x5() {
        check(ConvShape::new(1, 12, 10, 2, 2, 5, 5, 2, 2), 1e-10);
    }

    #[test]
    fn matches_direct_odd_sizes_no_padding() {
        check(ConvShape::new(1, 9, 7, 1, 1, 4, 2, 0, 0), 1e-10);
    }

    #[test]
    fn matches_direct_large_filter() {
        // BFC's defining regime: filter (∇Y) nearly as large as the input.
        check(ConvShape::new(1, 11, 11, 1, 2, 9, 9, 4, 4), 1e-10);
    }

    #[test]
    fn f32_io_precision() {
        let shape = ConvShape::new(1, 8, 8, 2, 2, 3, 3, 1, 1);
        let x64 = Tensor4::<f64>::random_uniform([1, 8, 8, 2], 53, 1.0);
        let dy64 = Tensor4::<f64>::random_uniform([1, 8, 8, 2], 54, 1.0);
        let exact = direct::bfc_direct(&shape, &x64, &dy64);
        let got = bfc_fft(&shape, &x64.cast::<f32>(), &dy64.cast::<f32>());
        // f32 I/O rounding only: MARE near 1e-7 like Table 4's Cu-FFT row.
        let m = mare(&got, &exact);
        assert!(m < 1e-6, "MARE {m}");
    }

    #[test]
    fn workspace_dwarfs_data_size() {
        // Table 2: Cu-FFT workspace is 3×–30× the data size.
        let shape = ConvShape::square(32, 56, 256, 256, 3);
        let ratio = workspace_bytes(&shape) as f64 / shape.data_bytes(4) as f64;
        assert!(ratio > 3.0, "ratio {ratio}");
    }

    #[test]
    fn flops_beat_direct_for_large_filters() {
        // FFT complexity is (quasi-)independent of filter area, so for the
        // large-filter BFC regime with enough channels to amortise the
        // transforms it undercuts direct-conv FLOPs. (Small channel counts
        // or pathological power-of-two padding blow-up flip the comparison,
        // which is exactly Table 3's "Cu-FFT lags for small F_H×F_W".)
        let big_filter = ConvShape::square(8, 56, 256, 256, 9);
        assert!(flops(&big_filter) < big_filter.bfc_flops());
        let small_filter = ConvShape::square(8, 56, 256, 256, 2);
        assert!(flops(&small_filter) > small_filter.bfc_flops());
    }
}
