//! INT8 quantized backward-filter convolution — the last porting target in
//! the paper's conclusion ("FP16 WinRS kernels can be ported to BF16, and
//! further to FP8 and INT8").
//!
//! This is the standard symmetric per-tensor recipe used by INT8 Tensor
//! Cores (`dp4a`/IMMA): each tensor is scaled by `127/absmax` and rounded
//! to `i8`; products accumulate exactly in `i32`; the result is
//! dequantised by the product of the two scales. Because the integer
//! accumulation is *exact*, the only error is the input quantisation —
//! which makes INT8 BFC an interesting contrast to FP8: coarser inputs, but
//! no accumulation error at any accumulation length (the Figure 12C failure
//! mode cannot occur).

use crate::ConvShape;
use rayon::prelude::*;
use winrs_tensor::Tensor4;

/// A quantised tensor: `i8` payload plus the dequantisation scale.
pub struct QuantTensor {
    /// Quantised values, same layout as the source tensor.
    pub data: Vec<i8>,
    /// Original dims.
    pub dims: [usize; 4],
    /// `real ≈ data · scale`.
    pub scale: f32,
}

/// Symmetric per-tensor quantisation to `i8` (round-to-nearest, saturating).
pub fn quantize(t: &Tensor4<f32>) -> QuantTensor {
    let absmax = t
        .as_slice()
        .iter()
        .fold(0.0f32, |m, &v| m.max(v.abs()))
        .max(f32::MIN_POSITIVE);
    let scale = absmax / 127.0;
    let inv = 1.0 / scale;
    QuantTensor {
        data: t
            .as_slice()
            .iter()
            .map(|&v| (v * inv).round().clamp(-127.0, 127.0) as i8)
            .collect(),
        dims: t.dims(),
        scale,
    }
}

/// INT8 BFC: exact `i32` accumulation over the quantised operands,
/// dequantised once at the end.
pub fn bfc_int8(shape: &ConvShape, x: &QuantTensor, dy: &QuantTensor) -> Tensor4<f32> {
    assert_eq!(x.dims, [shape.n, shape.ih, shape.iw, shape.ic]);
    let (oh, ow) = (shape.oh(), shape.ow());
    assert_eq!(dy.dims, [shape.n, oh, ow, shape.oc]);
    let dequant = x.scale * dy.scale;

    let xi = |n: usize, i: isize, j: isize, c: usize| -> i32 {
        if i < 0 || j < 0 || i as usize >= shape.ih || j as usize >= shape.iw {
            0
        } else {
            x.data[((n * shape.ih + i as usize) * shape.iw + j as usize) * shape.ic + c] as i32
        }
    };

    let mut dw = Tensor4::<f32>::zeros([shape.oc, shape.fh, shape.fw, shape.ic]);
    let per_oc = shape.fh * shape.fw * shape.ic;
    dw.as_mut_slice()
        .par_chunks_mut(per_oc)
        .enumerate()
        .for_each(|(oc, dwo)| {
            for a in 0..shape.fh {
                for b in 0..shape.fw {
                    for ic in 0..shape.ic {
                        // i32 accumulation is exact up to ~2^31/127² ≈ 1.3e5
                        // MACs; widen to i64 for safety at any size.
                        let mut acc: i64 = 0;
                        for n in 0..shape.n {
                            for i in 0..oh {
                                let xr = (a + i) as isize - shape.ph as isize;
                                for j in 0..ow {
                                    let xc = (b + j) as isize - shape.pw as isize;
                                    let dyv = dy.data
                                        [((n * oh + i) * ow + j) * shape.oc + oc]
                                        as i32;
                                    acc += (xi(n, xr, xc, ic) * dyv) as i64;
                                }
                            }
                        }
                        dwo[(a * shape.fw + b) * shape.ic + ic] = acc as f32 * dequant;
                    }
                }
            }
        });
    dw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use winrs_tensor::mare;

    #[test]
    fn quantize_roundtrip_error_bounded() {
        let t = Tensor4::<f32>::random_uniform([1, 8, 8, 4], 3, 2.0);
        let q = quantize(&t);
        for (orig, &qv) in t.as_slice().iter().zip(&q.data) {
            let back = qv as f32 * q.scale;
            assert!((back - orig).abs() <= q.scale / 2.0 + 1e-7);
        }
    }

    #[test]
    fn int8_bfc_matches_direct_within_quantisation_noise() {
        let shape = ConvShape::new(2, 12, 12, 3, 4, 3, 3, 1, 1);
        let x64 = Tensor4::<f64>::random_uniform([2, 12, 12, 3], 11, 1.0);
        let dy64 = Tensor4::<f64>::random_uniform([2, 12, 12, 4], 12, 1.0);
        let exact = direct::bfc_direct(&shape, &x64, &dy64);
        let dw = bfc_int8(&shape, &quantize(&x64.cast()), &quantize(&dy64.cast()));
        let m = mare(&dw, &exact);
        // ~0.4% input noise, averaged down by the accumulation.
        assert!(m < 0.02, "MARE {m}");
    }

    #[test]
    fn int8_error_does_not_grow_with_accumulation_length() {
        // The anti-Figure-12C property: exact integer accumulation keeps
        // MARE flat regardless of N·O_H·O_W.
        let mut mares = Vec::new();
        for &(n, res) in &[(1usize, 8usize), (4, 16), (8, 32)] {
            let shape = ConvShape::square(n, res, 2, 2, 3);
            let x64 = Tensor4::<f64>::random_uniform([n, res, res, 2], 21, 1.0);
            let dy64 =
                Tensor4::<f64>::random_uniform([n, shape.oh(), shape.ow(), 2], 22, 1.0);
            let exact = direct::bfc_direct(&shape, &x64, &dy64);
            let dw = bfc_int8(&shape, &quantize(&x64.cast()), &quantize(&dy64.cast()));
            mares.push(mare(&dw, &exact));
        }
        // Longest accumulation must not be dramatically worse than the
        // shortest (quantisation noise actually *averages down*).
        assert!(
            mares[2] < 3.0 * mares[0],
            "mares {mares:?} — INT8 error should stay flat"
        );
    }

    #[test]
    fn exact_for_integer_valued_inputs() {
        // Inputs already integer-valued with absmax = 127: quantisation is
        // lossless (scale = 1) and the whole computation is exact.
        let shape = ConvShape::new(1, 6, 6, 1, 1, 2, 2, 0, 0);
        let x = Tensor4::<f32>::from_fn([1, 6, 6, 1], |_, i, j, _| {
            if i == 0 && j == 0 {
                127.0
            } else {
                ((i * 6 + j) % 11) as f32
            }
        });
        let dy = Tensor4::<f32>::from_fn([1, 5, 5, 1], |_, i, j, _| {
            if i == 0 && j == 0 {
                127.0
            } else {
                ((i + j) % 7) as f32
            }
        });
        let qx = quantize(&x);
        let qdy = quantize(&dy);
        assert_eq!(qx.scale, 1.0);
        assert_eq!(qdy.scale, 1.0);
        let exact = direct::bfc_direct(&shape, &x.cast::<f64>(), &dy.cast::<f64>());
        let dw = bfc_int8(&shape, &qx, &qdy);
        for (got, want) in dw.as_slice().iter().zip(exact.as_slice()) {
            assert_eq!(*got as f64, *want, "{got} vs {want}");
        }
    }
}
