#![warn(missing_docs)]
// Unit tests assert on known-good values; unwrap is fine there.
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! Convolution algorithms: direct references and the cuDNN-analogue BFC
//! baselines the paper benchmarks against.
//!
//! The paper evaluates WinRS against five cuDNN backward-filter algorithms
//! (§6): three GEMM-based (`Algo0`, `Algo1`, `Algo3`), an FFT backend, and
//! the non-fused Winograd backend (`WinNF`, 3×3/5×5 only). This crate
//! implements each as a *real* CPU algorithm with the same structure —
//! lowering, staging, workspace — so that:
//!
//! * accuracy experiments (Table 4, Figure 12) compare genuine numerics;
//! * workspace experiments (Table 2, Figure 9) report genuine buffer sizes;
//! * the GPU performance model receives genuine FLOP counts and
//!   intermediate-traffic volumes per algorithm.
//!
//! Conventions (paper Table 1): `X ∈ ℝ^{N×I_H×I_W×I_C}`,
//! `∇Y ∈ ℝ^{N×O_H×O_W×O_C}`, `∇W ∈ ℝ^{O_C×F_H×F_W×I_C}`, stride 1,
//! zero padding `(p_H, p_W)`, correlation (no filter flip).

pub mod direct;
pub mod error;
pub mod fft_bfc;
pub mod gemm_bfc;
pub mod int8;
pub mod ndim;
pub mod shapes;
pub mod strided;
pub mod winnf;

pub use error::{ShapeError, ShapeViolation};
pub use shapes::ConvShape;
