//! Strided / dilated convolution — the general-case fallback.
//!
//! WinRS (like the paper) targets stride-1, dilation-1 convolutions; real
//! models also contain strided transition layers (e.g. ResNet's stride-2
//! downsampling convs, 4 of ResNet-34's 36). A credible library needs a
//! correct fallback for them, so this module provides direct FC and BFC
//! with arbitrary stride and dilation. The gradients are defined by the
//! usual correspondence:
//!
//! ```text
//! Y[n,i,j,oc]      = Σ X[n, i·s_H + a·d_H − p_H, j·s_W + b·d_W − p_W, ic] · W[oc,a,b,ic]
//! ∇W[oc,a,b,ic]    = Σ X[n, i·s_H + a·d_H − p_H, j·s_W + b·d_W − p_W, ic] · ∇Y[n,i,j,oc]
//! ```
//!
//! With `s = d = 1` these reduce exactly to [`crate::direct`], which the
//! tests assert.

use crate::ConvShape;
use rayon::prelude::*;
use winrs_tensor::{Scalar, Tensor4};

/// A convolution shape with stride and dilation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StridedShape {
    /// The stride-1 base parameters (batch, input dims, channels, filter,
    /// padding).
    pub base: ConvShape,
    /// Stride along height.
    pub sh: usize,
    /// Stride along width.
    pub sw: usize,
    /// Dilation along height.
    pub dh: usize,
    /// Dilation along width.
    pub dw: usize,
}

impl StridedShape {
    /// Wrap a base shape with stride and dilation.
    pub fn new(base: ConvShape, sh: usize, sw: usize, dh: usize, dw: usize) -> StridedShape {
        assert!(sh > 0 && sw > 0 && dh > 0 && dw > 0);
        let s = StridedShape {
            base,
            sh,
            sw,
            dh,
            dw,
        };
        // Explicit checks (usize subtraction in oh()/ow() would wrap in
        // release builds instead of panicking).
        assert!(
            base.ih + 2 * base.ph >= s.eff_fh() && base.iw + 2 * base.pw >= s.eff_fw(),
            "empty output: {s:?}"
        );
        s
    }

    /// Effective filter extent along height: `(F_H − 1)·d_H + 1`.
    pub fn eff_fh(&self) -> usize {
        (self.base.fh - 1) * self.dh + 1
    }

    /// Effective filter extent along width.
    pub fn eff_fw(&self) -> usize {
        (self.base.fw - 1) * self.dw + 1
    }

    /// Output height `⌊(I_H + 2p_H − eff_F_H)/s_H⌋ + 1`.
    pub fn oh(&self) -> usize {
        (self.base.ih + 2 * self.base.ph - self.eff_fh()) / self.sh + 1
    }

    /// Output width.
    pub fn ow(&self) -> usize {
        (self.base.iw + 2 * self.base.pw - self.eff_fw()) / self.sw + 1
    }
}

/// Strided/dilated forward convolution.
pub fn fc_strided<T: Scalar>(s: &StridedShape, x: &Tensor4<T>, w: &Tensor4<T>) -> Tensor4<T> {
    let b = &s.base;
    assert_eq!(x.dims(), [b.n, b.ih, b.iw, b.ic]);
    assert_eq!(w.dims(), [b.oc, b.fh, b.fw, b.ic]);
    let (oh, ow) = (s.oh(), s.ow());
    let mut y = Tensor4::zeros([b.n, oh, ow, b.oc]);
    let per_n = oh * ow * b.oc;
    y.as_mut_slice()
        .par_chunks_mut(per_n)
        .enumerate()
        .for_each(|(n, yn)| {
            for i in 0..oh {
                for j in 0..ow {
                    for oc in 0..b.oc {
                        let mut acc = T::ZERO;
                        for a in 0..b.fh {
                            let xi = (i * s.sh + a * s.dh) as isize - b.ph as isize;
                            for bb in 0..b.fw {
                                let xj = (j * s.sw + bb * s.dw) as isize - b.pw as isize;
                                for ic in 0..b.ic {
                                    acc += x.get_padded(n, xi, xj, ic) * w[(oc, a, bb, ic)];
                                }
                            }
                        }
                        yn[(i * ow + j) * b.oc + oc] = acc;
                    }
                }
            }
        });
    y
}

/// Strided/dilated backward-filter convolution.
pub fn bfc_strided<T: Scalar>(s: &StridedShape, x: &Tensor4<T>, dy: &Tensor4<T>) -> Tensor4<T> {
    let b = &s.base;
    let (oh, ow) = (s.oh(), s.ow());
    assert_eq!(x.dims(), [b.n, b.ih, b.iw, b.ic]);
    assert_eq!(dy.dims(), [b.n, oh, ow, b.oc]);
    let mut dw = Tensor4::zeros([b.oc, b.fh, b.fw, b.ic]);
    let per_oc = b.fh * b.fw * b.ic;
    dw.as_mut_slice()
        .par_chunks_mut(per_oc)
        .enumerate()
        .for_each(|(oc, dwo)| {
            for a in 0..b.fh {
                for bb in 0..b.fw {
                    for ic in 0..b.ic {
                        let mut acc = T::ZERO;
                        for n in 0..b.n {
                            for i in 0..oh {
                                let xi = (i * s.sh + a * s.dh) as isize - b.ph as isize;
                                for j in 0..ow {
                                    let xj = (j * s.sw + bb * s.dw) as isize - b.pw as isize;
                                    acc += x.get_padded(n, xi, xj, ic) * dy[(n, i, j, oc)];
                                }
                            }
                        }
                        dwo[(a * b.fw + bb) * b.ic + ic] = acc;
                    }
                }
            }
        });
    dw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use winrs_tensor::mare;

    #[test]
    fn stride_one_dilation_one_reduces_to_direct() {
        let base = ConvShape::new(2, 9, 11, 3, 4, 3, 3, 1, 1);
        let s = StridedShape::new(base, 1, 1, 1, 1);
        assert_eq!((s.oh(), s.ow()), (base.oh(), base.ow()));
        let x = Tensor4::<f64>::random_uniform([2, 9, 11, 3], 1, 1.0);
        let w = Tensor4::<f64>::random_uniform([4, 3, 3, 3], 2, 1.0);
        let dy = Tensor4::<f64>::random_uniform([2, s.oh(), s.ow(), 4], 3, 1.0);
        assert_eq!(
            fc_strided(&s, &x, &w).as_slice(),
            direct::fc_direct(&base, &x, &w).as_slice()
        );
        assert_eq!(
            bfc_strided(&s, &x, &dy).as_slice(),
            direct::bfc_direct(&base, &x, &dy).as_slice()
        );
    }

    #[test]
    fn stride2_output_shape() {
        // ResNet downsampling conv: 56 -> 28 with 3×3 s2 p1.
        let base = ConvShape::new(1, 56, 56, 4, 4, 3, 3, 1, 1);
        let s = StridedShape::new(base, 2, 2, 1, 1);
        assert_eq!((s.oh(), s.ow()), (28, 28));
    }

    #[test]
    fn stride2_bfc_matches_finite_difference() {
        let base = ConvShape::new(1, 8, 8, 2, 2, 3, 3, 1, 1);
        let s = StridedShape::new(base, 2, 2, 1, 1);
        let x = Tensor4::<f64>::random_uniform([1, 8, 8, 2], 4, 1.0);
        let w = Tensor4::<f64>::random_uniform([2, 3, 3, 2], 5, 1.0);
        let dy = Tensor4::<f64>::random_uniform([1, s.oh(), s.ow(), 2], 6, 1.0);
        let dw = bfc_strided(&s, &x, &dy);
        let loss = |w: &Tensor4<f64>| -> f64 {
            fc_strided(&s, &x, w)
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-6;
        for &(oc, a, b, ic) in &[(0usize, 0usize, 0usize, 0usize), (1, 2, 1, 1), (0, 1, 2, 0)] {
            let mut wp = w.clone();
            wp[(oc, a, b, ic)] += eps;
            let mut wm = w.clone();
            wm[(oc, a, b, ic)] -= eps;
            let fd = (loss(&wp) - loss(&wm)) / (2.0 * eps);
            let an = dw[(oc, a, b, ic)];
            assert!(
                (fd - an).abs() < 1e-4 * an.abs().max(1.0),
                "({oc},{a},{b},{ic}): fd {fd} vs {an}"
            );
        }
    }

    #[test]
    fn dilation2_equals_conv_with_spread_filter() {
        // A d=2 3×3 filter equals a stride-1 5×5 filter with zeros between
        // taps.
        let base3 = ConvShape::new(1, 10, 10, 1, 1, 3, 3, 0, 0);
        let s = StridedShape::new(base3, 1, 1, 2, 2);
        let x = Tensor4::<f64>::random_uniform([1, 10, 10, 1], 7, 1.0);
        let w3 = Tensor4::<f64>::random_uniform([1, 3, 3, 1], 8, 1.0);
        let y_dilated = fc_strided(&s, &x, &w3);

        let base5 = ConvShape::new(1, 10, 10, 1, 1, 5, 5, 0, 0);
        let w5 = Tensor4::<f64>::from_fn([1, 5, 5, 1], |_, a, b, _| {
            if a % 2 == 0 && b % 2 == 0 {
                w3[(0, a / 2, b / 2, 0)]
            } else {
                0.0
            }
        });
        let y_spread = direct::fc_direct(&base5, &x, &w5);
        let m = mare(&y_dilated, &y_spread);
        assert!(m < 1e-12, "MARE {m}");
    }

    #[test]
    #[should_panic(expected = "empty output")]
    fn oversized_dilation_rejected() {
        let base = ConvShape::new(1, 5, 5, 1, 1, 3, 3, 0, 0);
        let _ = StridedShape::new(base, 1, 1, 4, 4);
    }
}
