//! Non-fused 2D Winograd BFC: the `Cu-WinNF` baseline analogue.
//!
//! cuDNN's only Winograd BFC is non-fused and supports 3×3 and 5×5 `∇W`
//! (paper §6). It reduces time complexity 4× (3×3) and 6.25× (5×5)
//! (footnote 4), which pins down its tiling: `F(4×4, 3×3)` (α = 6) and
//! `F(4×4, 5×5)` (α = 8), with `(m·r/α)² = 4` and `6.25` respectively.
//!
//! The weight-gradient identity follows from differentiating the forward
//! Winograd form `y = Aᵀ[(G·w) ⊙ (Dᵀ·x)]` with respect to `w`:
//!
//! ```text
//! ∇w = Gᵀ[(Dᵀ·x) ⊙ (A·∇y)]            (1D)
//! ∇W = G₀ᵀ[(D₀ᵀ·X·D₁) ⊙ (A₀·∇Y·A₁ᵀ)]G₁  (2D, summed over tiles & batch)
//! ```
//!
//! The four stages run as *separate* passes with materialised global
//! buffers — exactly the structure whose workspace and intermediate traffic
//! the paper contrasts against WinRS's full fusion:
//!
//! 1. **IT**: transform every α×α input patch → `N·T·α²·I_C` floats;
//! 2. **YT**: transform every m×m `∇Y` tile → `N·T·α²·O_C` floats;
//! 3. **EWM**: α² batched GEMMs `(I_C × NT)·(NT × O_C)` → `α²·I_C·O_C`;
//! 4. **OT**: apply `G₀ᵀ…G₁` per `(oc, ic)` pair → `∇W`.

use crate::ConvShape;
use rayon::prelude::*;
use winrs_tensor::{Scalar, Tensor4};
use winrs_winograd::cook_toom::Transform;

/// The Cu-WinNF output-tile side `m` (fixed by footnote 4's reduction
/// factors).
pub const WINNF_TILE: usize = 4;

/// True if the analogue supports this shape (square 3×3 / 5×5, like
/// cuDNN's backend).
pub fn supported(shape: &ConvShape) -> bool {
    shape.fh == shape.fw && (shape.fh == 3 || shape.fh == 5)
}

struct Plan<T> {
    m: usize,
    r: usize,
    alpha: usize,
    /// `Aᵀ` rounded to T, `m × α` — its transpose `A` maps m → α.
    at: Vec<T>,
    /// `G` rounded to T, `α × r`.
    g: Vec<T>,
    /// `Dᵀ` rounded to T, `α × α`.
    dt: Vec<T>,
}

impl<T: Scalar> Plan<T> {
    fn new(m: usize, r: usize) -> Plan<T> {
        let t = Transform::generate(m, r).to_real();
        let round = |v: &[f64]| v.iter().map(|&x| T::from_f64(x)).collect::<Vec<T>>();
        Plan {
            m,
            r,
            alpha: t.alpha,
            at: round(&t.at_f64),
            g: round(&t.g_f64),
            dt: round(&t.dt_f64),
        }
    }

    /// `out[α×α] = Dᵀ · x · D` (x is α×α row-major).
    fn input_transform(&self, x: &[T], out: &mut [T], tmp: &mut [T]) {
        let a = self.alpha;
        // tmp = Dᵀ · x.
        for i in 0..a {
            for j in 0..a {
                let mut acc = T::ZERO;
                for k in 0..a {
                    acc += self.dt[i * a + k] * x[k * a + j];
                }
                tmp[i * a + j] = acc;
            }
        }
        // out = tmp · D  (D[k][j] = Dᵀ[j][k]).
        for i in 0..a {
            for j in 0..a {
                let mut acc = T::ZERO;
                for k in 0..a {
                    acc += tmp[i * a + k] * self.dt[j * a + k];
                }
                out[i * a + j] = acc;
            }
        }
    }

    /// `out[α×α] = A · y · Aᵀ` (y is m×m row-major; `A = atᵀ`).
    fn grad_transform(&self, y: &[T], out: &mut [T], tmp: &mut [T]) {
        let (a, m) = (self.alpha, self.m);
        // tmp[α×m] = A · y, A[i][k] = at[k*α + i].
        for i in 0..a {
            for j in 0..m {
                let mut acc = T::ZERO;
                for k in 0..m {
                    acc += self.at[k * a + i] * y[k * m + j];
                }
                tmp[i * m + j] = acc;
            }
        }
        // out[α×α] = tmp · Aᵀ, Aᵀ[k][j] = at[j*α + k] ... Aᵀ is m×α: (tmp·Aᵀ)[i][j] = Σ_k tmp[i][k]·A[j][k] with A α×m.
        for i in 0..a {
            for j in 0..a {
                let mut acc = T::ZERO;
                for k in 0..m {
                    acc += tmp[i * m + k] * self.at[k * a + j];
                }
                out[i * a + j] = acc;
            }
        }
    }

    /// `out[r×r] = Gᵀ · v · G` (v is α×α row-major).
    fn output_transform(&self, v: &[T], out: &mut [T], tmp: &mut [T]) {
        let (a, r) = (self.alpha, self.r);
        // tmp[r×α] = Gᵀ · v.
        for i in 0..r {
            for j in 0..a {
                let mut acc = T::ZERO;
                for k in 0..a {
                    acc += self.g[k * r + i] * v[k * a + j];
                }
                tmp[i * a + j] = acc;
            }
        }
        // out[r×r] = tmp · G.
        for i in 0..r {
            for j in 0..r {
                let mut acc = T::ZERO;
                for k in 0..a {
                    acc += tmp[i * a + k] * self.g[k * r + j];
                }
                out[i * r + j] = acc;
            }
        }
    }
}

/// Tile grid of a shape under `m×m` output tiles.
fn tile_grid(shape: &ConvShape, m: usize) -> (usize, usize) {
    (shape.oh().div_ceil(m), shape.ow().div_ceil(m))
}

/// Non-fused Winograd BFC. Panics if [`supported`] is false.
pub fn bfc_winnf<T: Scalar>(shape: &ConvShape, x: &Tensor4<T>, dy: &Tensor4<T>) -> Tensor4<T> {
    assert!(supported(shape), "WinNF supports square 3×3/5×5 only");
    let plan = Plan::<T>::new(WINNF_TILE, shape.fh);
    let (a, m, r) = (plan.alpha, plan.m, plan.r);
    let a2 = a * a;
    let (th, tw) = tile_grid(shape, m);
    let tiles = th * tw;
    let nt = shape.n * tiles;

    // Stage 1: IT. Layout xhat[pos][t·I_C + ic] for the stage-3 GEMMs.
    let mut xhat = vec![T::ZERO; a2 * nt * shape.ic];
    {
        let results: Vec<(usize, Vec<T>)> = (0..nt)
            .into_par_iter()
            .map(|t| {
                let n = t / tiles;
                let (ti, tj) = ((t % tiles) / tw, (t % tiles) % tw);
                let mut patch = vec![T::ZERO; a2];
                let mut out = vec![T::ZERO; a2];
                let mut tmp = vec![T::ZERO; a2];
                let mut local = vec![T::ZERO; a2 * shape.ic];
                for c_in in 0..shape.ic {
                    for u in 0..a {
                        for v in 0..a {
                            let xi = (ti * m + u) as isize - shape.ph as isize;
                            let xj = (tj * m + v) as isize - shape.pw as isize;
                            patch[u * a + v] = x.get_padded(n, xi, xj, c_in);
                        }
                    }
                    plan.input_transform(&patch, &mut out, &mut tmp);
                    for pos in 0..a2 {
                        local[pos * shape.ic + c_in] = out[pos];
                    }
                }
                (t, local)
            })
            .collect();
        for (t, local) in results {
            for pos in 0..a2 {
                let dst = pos * nt * shape.ic + t * shape.ic;
                xhat[dst..dst + shape.ic]
                    .copy_from_slice(&local[pos * shape.ic..(pos + 1) * shape.ic]);
            }
        }
    }

    // Stage 2: YT, layout yhat[pos][t·O_C + oc].
    let mut yhat = vec![T::ZERO; a2 * nt * shape.oc];
    {
        let (oh, ow) = (shape.oh(), shape.ow());
        let results: Vec<(usize, Vec<T>)> = (0..nt)
            .into_par_iter()
            .map(|t| {
                let n = t / tiles;
                let (ti, tj) = ((t % tiles) / tw, (t % tiles) % tw);
                let mut tile = vec![T::ZERO; m * m];
                let mut out = vec![T::ZERO; a2];
                let mut tmp = vec![T::ZERO; a * m];
                let mut local = vec![T::ZERO; a2 * shape.oc];
                for c_out in 0..shape.oc {
                    for u in 0..m {
                        for v in 0..m {
                            let yi = ti * m + u;
                            let yj = tj * m + v;
                            tile[u * m + v] = if yi < oh && yj < ow {
                                dy[(n, yi, yj, c_out)]
                            } else {
                                T::ZERO // partial edge tile
                            };
                        }
                    }
                    plan.grad_transform(&tile, &mut out, &mut tmp);
                    for pos in 0..a2 {
                        local[pos * shape.oc + c_out] = out[pos];
                    }
                }
                (t, local)
            })
            .collect();
        for (t, local) in results {
            for pos in 0..a2 {
                let dst = pos * nt * shape.oc + t * shape.oc;
                yhat[dst..dst + shape.oc]
                    .copy_from_slice(&local[pos * shape.oc..(pos + 1) * shape.oc]);
            }
        }
    }

    // Stage 3: α² batched GEMMs, M[pos] (I_C×O_C) = X̂[pos]ᵀ · Ŷ[pos].
    let mut prod = vec![T::ZERO; a2 * shape.ic * shape.oc];
    prod.par_chunks_mut(shape.ic * shape.oc)
        .enumerate()
        .for_each(|(pos, mpos)| {
            let xs = &xhat[pos * nt * shape.ic..(pos + 1) * nt * shape.ic];
            let ys = &yhat[pos * nt * shape.oc..(pos + 1) * nt * shape.oc];
            for t in 0..nt {
                let xrow = &xs[t * shape.ic..(t + 1) * shape.ic];
                let yrow = &ys[t * shape.oc..(t + 1) * shape.oc];
                for (ci, &xv) in xrow.iter().enumerate() {
                    let dst = &mut mpos[ci * shape.oc..(ci + 1) * shape.oc];
                    for (co, &yv) in yrow.iter().enumerate() {
                        dst[co] += xv * yv;
                    }
                }
            }
        });

    // Stage 4: OT per (oc, ic).
    let mut dw = Tensor4::<T>::zeros([shape.oc, shape.fh, shape.fw, shape.ic]);
    let per_oc = shape.fh * shape.fw * shape.ic;
    dw.as_mut_slice()
        .par_chunks_mut(per_oc)
        .enumerate()
        .for_each(|(c_out, dwo)| {
            let mut v = vec![T::ZERO; a2];
            let mut out = vec![T::ZERO; r * r];
            let mut tmp = vec![T::ZERO; r * a];
            for c_in in 0..shape.ic {
                for pos in 0..a2 {
                    v[pos] = prod[pos * shape.ic * shape.oc + c_in * shape.oc + c_out];
                }
                plan.output_transform(&v, &mut out, &mut tmp);
                for fa in 0..r {
                    for fb in 0..r {
                        dwo[(fa * shape.fw + fb) * shape.ic + c_in] = out[fa * r + fb];
                    }
                }
            }
        });
    dw
}

/// Workspace bytes at 4-byte elements: the three materialised stage buffers
/// (X̂, Ŷ, product spectra).
pub fn workspace_bytes(shape: &ConvShape) -> usize {
    if !supported(shape) {
        return 0;
    }
    let alpha = WINNF_TILE + shape.fh - 1;
    let a2 = alpha * alpha;
    let (th, tw) = tile_grid(shape, WINNF_TILE);
    let nt = shape.n * th * tw;
    (a2 * nt * (shape.ic + shape.oc) + a2 * shape.ic * shape.oc) * 4
}

/// FLOPs: transforms + EWM GEMMs (the EWM dominates). Direct-conv FLOPs
/// divide by `(m·r/α)²` = 4 (3×3) or 6.25 (5×5) plus transform overhead.
pub fn flops(shape: &ConvShape) -> u64 {
    if !supported(shape) {
        return 0;
    }
    let m = WINNF_TILE as u64;
    let alpha = m + shape.fh as u64 - 1;
    let a2 = alpha * alpha;
    let (th, tw) = tile_grid(shape, WINNF_TILE);
    let nt = (shape.n * th * tw) as u64;
    let ewm = 2 * a2 * nt * shape.ic as u64 * shape.oc as u64;
    // Transform cost: 2·α·α² MACs per 2D transform application.
    let it = nt * shape.ic as u64 * 4 * alpha * a2;
    let yt = nt * shape.oc as u64 * 4 * alpha * a2;
    let ot = (shape.ic * shape.oc) as u64 * 4 * alpha * a2;
    ewm + it + yt + ot
}

/// Intermediate traffic: each stage buffer written once and read once.
pub fn intermediate_traffic_bytes(shape: &ConvShape) -> u64 {
    2 * workspace_bytes(shape) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use winrs_fp16::f16;
    use winrs_tensor::mare;

    fn check_f64(shape: ConvShape, tol: f64) {
        let x = Tensor4::<f64>::random_uniform([shape.n, shape.ih, shape.iw, shape.ic], 61, 1.0);
        let dy =
            Tensor4::<f64>::random_uniform([shape.n, shape.oh(), shape.ow(), shape.oc], 62, 1.0);
        let exact = direct::bfc_direct(&shape, &x, &dy);
        let got = bfc_winnf(&shape, &x, &dy);
        let m = mare(&got, &exact);
        assert!(m < tol, "{shape:?}: MARE {m}");
    }

    #[test]
    fn matches_direct_3x3() {
        check_f64(ConvShape::new(2, 8, 8, 2, 3, 3, 3, 1, 1), 1e-12);
    }

    #[test]
    fn matches_direct_5x5() {
        check_f64(ConvShape::new(1, 12, 12, 2, 2, 5, 5, 2, 2), 1e-12);
    }

    #[test]
    fn matches_direct_partial_edge_tiles() {
        // O_H, O_W = 9: not a multiple of the m = 4 tile.
        check_f64(ConvShape::new(1, 9, 9, 1, 1, 3, 3, 1, 1), 1e-12);
    }

    #[test]
    fn matches_direct_no_padding() {
        check_f64(ConvShape::new(2, 10, 10, 1, 2, 3, 3, 0, 0), 1e-12);
    }

    #[test]
    fn fp32_accuracy_near_table4_row() {
        // Table 4: FP32 Cu-WinNF MARE 4.78e-7 … 3.68e-6.
        let shape = ConvShape::new(2, 16, 16, 4, 4, 3, 3, 1, 1);
        let x = Tensor4::<f64>::random_uniform([shape.n, shape.ih, shape.iw, shape.ic], 63, 1.0);
        let dy =
            Tensor4::<f64>::random_uniform([shape.n, shape.oh(), shape.ow(), shape.oc], 64, 1.0);
        let exact = direct::bfc_direct(&shape, &x, &dy);
        let got = bfc_winnf(&shape, &x.cast::<f32>(), &dy.cast::<f32>());
        let m = mare(&got, &exact);
        assert!(m > 1e-8 && m < 1e-4, "MARE {m}");
    }

    #[test]
    fn fp16_is_much_worse_than_fp32() {
        // Table 4: FP16 Cu-WinNF MARE up to 6.5e-1 — the non-fused f16
        // pipeline degrades badly. Verify the ordering, not the absolute.
        let shape = ConvShape::new(2, 16, 16, 2, 2, 3, 3, 1, 1);
        let x = Tensor4::<f64>::random_uniform([shape.n, shape.ih, shape.iw, shape.ic], 65, 1.0);
        let dy =
            Tensor4::<f64>::random_uniform([shape.n, shape.oh(), shape.ow(), shape.oc], 66, 0.01);
        let exact = direct::bfc_direct(&shape, &x, &dy);
        let m32 = mare(&bfc_winnf(&shape, &x.cast::<f32>(), &dy.cast::<f32>()), &exact);
        let m16 = mare(&bfc_winnf(&shape, &x.cast::<f16>(), &dy.cast::<f16>()), &exact);
        assert!(m16 > 50.0 * m32, "fp16 {m16} vs fp32 {m32}");
    }

    #[test]
    fn unsupported_shapes_rejected() {
        assert!(!supported(&ConvShape::new(1, 8, 8, 1, 1, 4, 4, 2, 2)));
        assert!(!supported(&ConvShape::new(1, 8, 8, 1, 1, 3, 5, 1, 2)));
        assert!(supported(&ConvShape::new(1, 8, 8, 1, 1, 5, 5, 2, 2)));
    }

    #[test]
    #[should_panic(expected = "WinNF supports")]
    fn unsupported_execution_panics() {
        let shape = ConvShape::new(1, 8, 8, 1, 1, 7, 7, 3, 3);
        let x = Tensor4::<f32>::zeros([1, 8, 8, 1]);
        let dy = Tensor4::<f32>::zeros([1, shape.oh(), shape.ow(), 1]);
        let _ = bfc_winnf(&shape, &x, &dy);
    }

    #[test]
    fn workspace_is_multiple_of_data_size() {
        // Table 2: Cu-WinNF workspace 2.23×–5.9× data size.
        let shape = ConvShape::square(32, 56, 128, 128, 3);
        let ratio = workspace_bytes(&shape) as f64 / shape.data_bytes(4) as f64;
        assert!(ratio > 1.5, "ratio {ratio}");
    }

    #[test]
    fn flop_reduction_near_4x_for_3x3() {
        // EWM-only reduction is (m·r/α)² = 4; transforms eat some of it.
        let shape = ConvShape::square(8, 64, 64, 64, 3);
        let reduction = shape.bfc_flops() as f64 / flops(&shape) as f64;
        assert!(reduction > 2.0 && reduction < 4.0, "reduction {reduction}");
    }
}
