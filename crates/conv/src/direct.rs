//! Direct (naive) convolutions for all three training passes.
//!
//! These are the semantic definitions of FC, BDC and BFC (paper §2.2) and
//! the ground-truth oracles of every test and accuracy experiment. The f64
//! instantiation of [`bfc_direct`] is the reference all MAREs are measured
//! against (§6.3). Loops are ordered for clarity, not speed; rayon
//! parallelism over the outermost axis keeps the test suite quick without
//! changing summation order within one output element.

use crate::ConvShape;
use rayon::prelude::*;
use winrs_tensor::{Scalar, Tensor4};

/// Forward convolution: `Y[n,oh,ow,oc] = Σ_{fh,fw,ic}
/// X[n, oh+fh−p_H, ow+fw−p_W, ic] · W[oc,fh,fw,ic]`.
pub fn fc_direct<T: Scalar>(shape: &ConvShape, x: &Tensor4<T>, w: &Tensor4<T>) -> Tensor4<T> {
    assert_eq!(x.dims(), [shape.n, shape.ih, shape.iw, shape.ic]);
    assert_eq!(w.dims(), [shape.oc, shape.fh, shape.fw, shape.ic]);
    let (oh, ow) = (shape.oh(), shape.ow());
    let mut y = Tensor4::zeros([shape.n, oh, ow, shape.oc]);
    let oc_stride = shape.oc;
    let per_n = oh * ow * oc_stride;
    y.as_mut_slice()
        .par_chunks_mut(per_n)
        .enumerate()
        .for_each(|(n, yn)| {
            for i in 0..oh {
                for j in 0..ow {
                    for c_out in 0..shape.oc {
                        let mut acc = T::ZERO;
                        for a in 0..shape.fh {
                            for b in 0..shape.fw {
                                let xi = (i + a) as isize - shape.ph as isize;
                                let xj = (j + b) as isize - shape.pw as isize;
                                for c_in in 0..shape.ic {
                                    acc += x.get_padded(n, xi, xj, c_in) * w[(c_out, a, b, c_in)];
                                }
                            }
                        }
                        yn[(i * ow + j) * oc_stride + c_out] = acc;
                    }
                }
            }
        });
    y
}

/// Backward-data convolution: `∇X[n,ih,iw,ic] = Σ_{fh,fw,oc}
/// ∇Y[n, ih−fh+p_H, iw−fw+p_W, oc] · W[oc,fh,fw,ic]` (the adjoint of FC).
pub fn bdc_direct<T: Scalar>(shape: &ConvShape, dy: &Tensor4<T>, w: &Tensor4<T>) -> Tensor4<T> {
    let (oh, ow) = (shape.oh(), shape.ow());
    assert_eq!(dy.dims(), [shape.n, oh, ow, shape.oc]);
    assert_eq!(w.dims(), [shape.oc, shape.fh, shape.fw, shape.ic]);
    let mut dx = Tensor4::zeros([shape.n, shape.ih, shape.iw, shape.ic]);
    let per_n = shape.ih * shape.iw * shape.ic;
    dx.as_mut_slice()
        .par_chunks_mut(per_n)
        .enumerate()
        .for_each(|(n, dxn)| {
            for i in 0..shape.ih {
                for j in 0..shape.iw {
                    for c_in in 0..shape.ic {
                        let mut acc = T::ZERO;
                        for a in 0..shape.fh {
                            for b in 0..shape.fw {
                                let yi = i as isize + shape.ph as isize - a as isize;
                                let yj = j as isize + shape.pw as isize - b as isize;
                                for c_out in 0..shape.oc {
                                    acc += dy.get_padded(n, yi, yj, c_out) * w[(c_out, a, b, c_in)];
                                }
                            }
                        }
                        dxn[(i * shape.iw + j) * shape.ic + c_in] = acc;
                    }
                }
            }
        });
    dx
}

/// Backward-filter convolution — the operation this whole repository is
/// about: `∇W[oc,fh,fw,ic] = Σ_{n,oh,ow}
/// X[n, fh+oh−p_H, fw+ow−p_W, ic] · ∇Y[n,oh,ow,oc]`.
pub fn bfc_direct<T: Scalar>(shape: &ConvShape, x: &Tensor4<T>, dy: &Tensor4<T>) -> Tensor4<T> {
    let (oh, ow) = (shape.oh(), shape.ow());
    assert_eq!(x.dims(), [shape.n, shape.ih, shape.iw, shape.ic]);
    assert_eq!(dy.dims(), [shape.n, oh, ow, shape.oc]);
    let mut dw = Tensor4::zeros([shape.oc, shape.fh, shape.fw, shape.ic]);
    let per_oc = shape.fh * shape.fw * shape.ic;
    dw.as_mut_slice()
        .par_chunks_mut(per_oc)
        .enumerate()
        .for_each(|(c_out, dwo)| {
            for a in 0..shape.fh {
                for b in 0..shape.fw {
                    for c_in in 0..shape.ic {
                        let mut acc = T::ZERO;
                        for n in 0..shape.n {
                            for i in 0..oh {
                                for j in 0..ow {
                                    let xi = (a + i) as isize - shape.ph as isize;
                                    let xj = (b + j) as isize - shape.pw as isize;
                                    acc += x.get_padded(n, xi, xj, c_in) * dy[(n, i, j, c_out)];
                                }
                            }
                        }
                        dwo[(a * shape.fw + b) * shape.ic + c_in] = acc;
                    }
                }
            }
        });
    dw
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_shape() -> ConvShape {
        ConvShape::new(2, 5, 6, 3, 4, 3, 3, 1, 1)
    }

    #[test]
    fn bfc_matches_finite_difference_of_fc() {
        // d⟨∇Y, FC(X, W)⟩/dW[e] == BFC(X, ∇Y)[e]: check a few filter
        // entries by central finite differences in f64.
        let shape = small_shape();
        let x = Tensor4::<f64>::random_uniform([shape.n, shape.ih, shape.iw, shape.ic], 1, 1.0);
        let w = Tensor4::<f64>::random_uniform([shape.oc, shape.fh, shape.fw, shape.ic], 2, 1.0);
        let dy = Tensor4::<f64>::random_uniform([shape.n, shape.oh(), shape.ow(), shape.oc], 3, 1.0);

        let dw = bfc_direct(&shape, &x, &dy);

        let loss = |w: &Tensor4<f64>| -> f64 {
            let y = fc_direct(&shape, &x, w);
            y.as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-6;
        for &(oc, a, b, ic) in &[(0usize, 0usize, 0usize, 0usize), (3, 2, 1, 2), (1, 1, 2, 0)] {
            let mut wp = w.clone();
            wp[(oc, a, b, ic)] += eps;
            let mut wm = w.clone();
            wm[(oc, a, b, ic)] -= eps;
            let fd = (loss(&wp) - loss(&wm)) / (2.0 * eps);
            let an = dw[(oc, a, b, ic)];
            assert!(
                (fd - an).abs() < 1e-4 * an.abs().max(1.0),
                "({oc},{a},{b},{ic}): fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn bdc_matches_finite_difference_of_fc() {
        let shape = ConvShape::new(1, 4, 4, 2, 3, 3, 3, 1, 1);
        let x = Tensor4::<f64>::random_uniform([shape.n, shape.ih, shape.iw, shape.ic], 4, 1.0);
        let w = Tensor4::<f64>::random_uniform([shape.oc, shape.fh, shape.fw, shape.ic], 5, 1.0);
        let dy = Tensor4::<f64>::random_uniform([shape.n, shape.oh(), shape.ow(), shape.oc], 6, 1.0);
        let dx = bdc_direct(&shape, &dy, &w);
        let loss = |x: &Tensor4<f64>| -> f64 {
            fc_direct(&shape, x, &w)
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-6;
        for &(n, i, j, c) in &[(0usize, 0usize, 0usize, 0usize), (0, 3, 3, 1), (0, 2, 1, 0)] {
            let mut xp = x.clone();
            xp[(n, i, j, c)] += eps;
            let mut xm = x.clone();
            xm[(n, i, j, c)] -= eps;
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            let an = dx[(n, i, j, c)];
            assert!(
                (fd - an).abs() < 1e-4 * an.abs().max(1.0),
                "({n},{i},{j},{c}): fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn fc_identity_filter_passes_input_through() {
        // 1×1 filter with a single 1.0: Y == X (same channels).
        let shape = ConvShape::new(1, 3, 3, 1, 1, 1, 1, 0, 0);
        let x = Tensor4::<f64>::random_uniform([1, 3, 3, 1], 7, 1.0);
        let mut w = Tensor4::<f64>::zeros([1, 1, 1, 1]);
        w[(0, 0, 0, 0)] = 1.0;
        let y = fc_direct(&shape, &x, &w);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn bfc_all_ones_counts_contributions() {
        // With X ≡ 1, ∇Y ≡ 1 and no padding, each ∇W element equals
        // N·O_H·O_W.
        let shape = ConvShape::new(2, 4, 4, 1, 1, 2, 2, 0, 0);
        let x = Tensor4::<f64>::from_fn([2, 4, 4, 1], |_, _, _, _| 1.0);
        let dy = Tensor4::<f64>::from_fn([2, 3, 3, 1], |_, _, _, _| 1.0);
        let dw = bfc_direct(&shape, &x, &dy);
        for &v in dw.as_slice() {
            assert_eq!(v, (2 * 3 * 3) as f64);
        }
    }

    #[test]
    fn bfc_padding_reduces_corner_sums() {
        // With padding, corner filter taps see fewer valid input pixels, so
        // with all-ones tensors their gradient is strictly smaller than the
        // centre tap's.
        let shape = ConvShape::square(1, 6, 1, 1, 3);
        let x = Tensor4::<f64>::from_fn([1, 6, 6, 1], |_, _, _, _| 1.0);
        let dy = Tensor4::<f64>::from_fn([1, 6, 6, 1], |_, _, _, _| 1.0);
        let dw = bfc_direct(&shape, &x, &dy);
        let centre = dw[(0, 1, 1, 0)];
        let corner = dw[(0, 0, 0, 0)];
        assert_eq!(centre, 36.0);
        assert_eq!(corner, 25.0);
        assert!(corner < centre);
    }

    #[test]
    fn f32_bfc_close_to_f64() {
        let shape = small_shape();
        let x = Tensor4::<f64>::random_uniform([shape.n, shape.ih, shape.iw, shape.ic], 8, 1.0);
        let dy = Tensor4::<f64>::random_uniform([shape.n, shape.oh(), shape.ow(), shape.oc], 9, 1.0);
        let exact = bfc_direct(&shape, &x, &dy);
        let approx = bfc_direct(&shape, &x.cast::<f32>(), &dy.cast::<f32>());
        let m = winrs_tensor::mare(&approx, &exact);
        assert!(m < 1e-5, "MARE {m}");
    }
}
