//! GEMM-based BFC: the `Cu-GEMM` baseline family (Algo0 / Algo1 / Algo3
//! analogues).
//!
//! BFC lowers to GEMM as `∇Wᵀ[f, oc] = Σ_n X̃_nᵀ[f, o] · ∇Y_n[o, oc]` where
//! `o` ranges over the `O_H·O_W` output positions, `f` over the
//! `F_H·F_W·I_C` filter taps, and `X̃_n[o, f]` is the im2col lowering of
//! batch item `n`. The three cuDNN algorithms differ in how much of `X̃`
//! they materialise:
//!
//! * **Algo0** — no workspace: direct accumulation (slowest; here it is the
//!   shared [`crate::direct::bfc_direct`] loop).
//! * **Algo1** — one batch item's full im2col panel (`F × O` floats) plus a
//!   transposed accumulation buffer; fastest GEMM shape, biggest buffer.
//! * **Algo3** — a tiled panel of [`ALGO3_TILE`] output positions: small,
//!   shape-independent workspace at some GEMM-efficiency cost (the paper's
//!   Table 2 shows Cu-Algo3 averaging 0.10× data size vs 1.06× for
//!   Cu-Algo1).
//!
//! The FP16 variant reproduces the Tensor-Core contract *and* Cu-Algo1's
//! accuracy behaviour (Figure 12): accumulation runs in f32 within a flush
//! window and is stored to binary16 every [`F16_FLUSH`] positions, so error
//! grows with the accumulation length `N·O_H·O_W` — which is exactly the
//! degradation the paper measures for Cu-Algo1.

use crate::{direct, ConvShape};
use winrs_fp16::f16;
use winrs_gemm::{gemm_f32, gemm_flops};
use winrs_tensor::{Scalar, Tensor4};

/// Output-position tile of the Algo3 analogue.
pub const ALGO3_TILE: usize = 512;

/// FP16 flush window: accumulators are rounded to binary16 after this many
/// output positions. Chained Tensor-Core HGEMM with a binary16 `C` operand
/// re-rounds the running total every mma step; 16 positions models that
/// granularity and is what makes Cu-Algo1's error grow with the
/// accumulation length `N·O_H·O_W` (Figure 12C).
pub const F16_FLUSH: usize = 16;

/// Which GEMM-based algorithm variant to run / account.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmAlgo {
    /// Zero-workspace direct accumulation.
    Algo0,
    /// Full per-batch-item im2col panel.
    Algo1,
    /// Tiled im2col panel.
    Algo3,
}

/// Fill `buf` (layout `F × tile_len`, row-major) with the *transposed*
/// im2col panel of batch item `n`, output positions `o0 .. o0+tile_len`.
fn im2col_transposed(
    shape: &ConvShape,
    x: &Tensor4<f32>,
    n: usize,
    o0: usize,
    tile_len: usize,
    buf: &mut [f32],
) {
    let ow = shape.ow();
    let f_total = shape.fh * shape.fw * shape.ic;
    debug_assert_eq!(buf.len(), f_total * tile_len);
    for (t, chunk) in (o0..o0 + tile_len).zip(0..tile_len) {
        let (i, j) = (t / ow, t % ow);
        for a in 0..shape.fh {
            for b in 0..shape.fw {
                let xi = (i + a) as isize - shape.ph as isize;
                let xj = (j + b) as isize - shape.pw as isize;
                for c_in in 0..shape.ic {
                    let f = (a * shape.fw + b) * shape.ic + c_in;
                    buf[f * tile_len + chunk] = x.get_padded(n, xi, xj, c_in);
                }
            }
        }
    }
}

/// Transpose the `F × O_C` accumulation buffer into the `∇W` tensor layout
/// `(O_C, F_H, F_W, I_C)`.
fn transpose_into_dw<T: Scalar>(shape: &ConvShape, dwt: &[T]) -> Tensor4<T> {
    let f_total = shape.fh * shape.fw * shape.ic;
    let mut dw = Tensor4::zeros([shape.oc, shape.fh, shape.fw, shape.ic]);
    for f in 0..f_total {
        let a = f / (shape.fw * shape.ic);
        let b = (f / shape.ic) % shape.fw;
        let c_in = f % shape.ic;
        for c_out in 0..shape.oc {
            dw[(c_out, a, b, c_in)] = dwt[f * shape.oc + c_out];
        }
    }
    dw
}

/// Run the selected GEMM-based BFC in f32.
pub fn bfc_gemm_f32(
    algo: GemmAlgo,
    shape: &ConvShape,
    x: &Tensor4<f32>,
    dy: &Tensor4<f32>,
) -> Tensor4<f32> {
    match algo {
        GemmAlgo::Algo0 => direct::bfc_direct(shape, x, dy),
        GemmAlgo::Algo1 => bfc_gemm_tiled(shape, x, dy, shape.oh() * shape.ow()),
        GemmAlgo::Algo3 => bfc_gemm_tiled(shape, x, dy, ALGO3_TILE),
    }
}

fn bfc_gemm_tiled(
    shape: &ConvShape,
    x: &Tensor4<f32>,
    dy: &Tensor4<f32>,
    tile: usize,
) -> Tensor4<f32> {
    let o_total = shape.oh() * shape.ow();
    let f_total = shape.fh * shape.fw * shape.ic;
    let tile = tile.min(o_total);
    let mut panel = vec![0.0f32; f_total * tile];
    let mut dwt = vec![0.0f32; f_total * shape.oc];

    for n in 0..shape.n {
        let mut o0 = 0;
        while o0 < o_total {
            let len = tile.min(o_total - o0);
            let panel_slice = &mut panel[..f_total * len];
            im2col_transposed(shape, x, n, o0, len, panel_slice);
            // ∇Y_n rows o0..o0+len are contiguous: (len × O_C) row-major.
            let dy_base = ((n * o_total) + o0) * shape.oc;
            let dy_panel = &dy.as_slice()[dy_base..dy_base + len * shape.oc];
            // dwt (F × O_C) += panel (F × len) · dy_panel (len × O_C).
            gemm_f32(
                f_total, shape.oc, len, 1.0, panel_slice, dy_panel, 1.0, &mut dwt,
            );
            o0 += len;
        }
    }
    transpose_into_dw(shape, &dwt)
}

/// FP16 Algo1 analogue: binary16 tensors, f32 accumulation inside a flush
/// window, binary16 storage between windows (Tensor-Core GEMM chaining with
/// a binary16 `C`).
pub fn bfc_gemm_f16(shape: &ConvShape, x: &Tensor4<f16>, dy: &Tensor4<f16>) -> Tensor4<f16> {
    let o_total = shape.oh() * shape.ow();
    let f_total = shape.fh * shape.fw * shape.ic;
    let mut dwt16 = vec![f16::ZERO; f_total * shape.oc];
    // The f32 im2col panel is rebuilt from the f16 input per tile (loads
    // widen f16 -> f32 for the MMA, exactly like `ldmatrix` + `mma`).
    let tile = F16_FLUSH.min(o_total);
    let mut panel = vec![0.0f32; f_total * tile];
    let x32 = x.cast::<f32>();

    for n in 0..shape.n {
        let mut o0 = 0;
        while o0 < o_total {
            let len = tile.min(o_total - o0);
            let panel_slice = &mut panel[..f_total * len];
            im2col_transposed(shape, &x32, n, o0, len, panel_slice);
            let dy_base = ((n * o_total) + o0) * shape.oc;
            // f32 accumulator for this window.
            let mut win = vec![0.0f32; f_total * shape.oc];
            let dy_panel: Vec<f32> = dy.as_slice()[dy_base..dy_base + len * shape.oc]
                .iter()
                .map(|v| v.to_f32())
                .collect();
            gemm_f32(f_total, shape.oc, len, 1.0, panel_slice, &dy_panel, 0.0, &mut win);
            // Flush: binary16 read-modify-write of the running total — the
            // step that loses precision as N·O_H·O_W grows.
            for (acc16, w) in dwt16.iter_mut().zip(&win) {
                *acc16 = f16::from_f32(acc16.to_f32() + *w);
            }
            o0 += len;
        }
    }
    transpose_into_dw(shape, &dwt16)
}

/// Workspace bytes of each algorithm analogue at 4-byte elements.
pub fn workspace_bytes(algo: GemmAlgo, shape: &ConvShape) -> usize {
    let f_total = shape.fh * shape.fw * shape.ic;
    let o_total = shape.oh() * shape.ow();
    match algo {
        GemmAlgo::Algo0 => 0,
        GemmAlgo::Algo1 => (f_total * o_total + f_total * shape.oc) * 4,
        GemmAlgo::Algo3 => (f_total * ALGO3_TILE.min(o_total) + f_total * shape.oc) * 4,
    }
}

/// Total FLOPs (identical to direct: the lowering adds no multiplies).
pub fn flops(shape: &ConvShape) -> u64 {
    let f_total = shape.fh * shape.fw * shape.ic;
    let o_total = shape.oh() * shape.ow();
    shape.n as u64 * gemm_flops(f_total, shape.oc, o_total)
}

/// Global-memory traffic (bytes) spent on *intermediate* data: each im2col
/// panel is written once and read once per GEMM.
pub fn intermediate_traffic_bytes(algo: GemmAlgo, shape: &ConvShape) -> u64 {
    match algo {
        GemmAlgo::Algo0 => 0,
        // Every output position expands to F values, written + read.
        GemmAlgo::Algo1 | GemmAlgo::Algo3 => {
            let f_total = (shape.fh * shape.fw * shape.ic) as u64;
            let o_total = (shape.oh() * shape.ow()) as u64;
            2 * shape.n as u64 * o_total * f_total * 4
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winrs_tensor::mare;

    fn setup(shape: &ConvShape) -> (Tensor4<f32>, Tensor4<f32>, Tensor4<f64>) {
        let x64 = Tensor4::<f64>::random_uniform([shape.n, shape.ih, shape.iw, shape.ic], 21, 1.0);
        let dy64 =
            Tensor4::<f64>::random_uniform([shape.n, shape.oh(), shape.ow(), shape.oc], 22, 1.0);
        let exact = direct::bfc_direct(shape, &x64, &dy64);
        (x64.cast(), dy64.cast(), exact)
    }

    #[test]
    fn algo1_matches_direct() {
        let shape = ConvShape::new(2, 9, 11, 3, 5, 3, 3, 1, 1);
        let (x, dy, exact) = setup(&shape);
        let dw = bfc_gemm_f32(GemmAlgo::Algo1, &shape, &x, &dy);
        assert!(mare(&dw, &exact) < 1e-5);
    }

    #[test]
    fn algo3_tiling_matches_direct() {
        // Output area > ALGO3_TILE forces multiple tiles per batch item.
        let shape = ConvShape::new(1, 40, 40, 2, 3, 3, 3, 1, 1);
        assert!(shape.oh() * shape.ow() > ALGO3_TILE);
        let (x, dy, exact) = setup(&shape);
        let dw = bfc_gemm_f32(GemmAlgo::Algo3, &shape, &x, &dy);
        assert!(mare(&dw, &exact) < 1e-5);
    }

    #[test]
    fn algo0_is_direct() {
        let shape = ConvShape::new(1, 6, 6, 2, 2, 2, 2, 1, 1);
        let (x, dy, exact) = setup(&shape);
        let dw = bfc_gemm_f32(GemmAlgo::Algo0, &shape, &x, &dy);
        assert!(mare(&dw, &exact) < 1e-5);
    }

    #[test]
    fn uneven_tile_edges_are_exact() {
        // o_total not a multiple of the tile: residual tile path.
        let shape = ConvShape::new(1, 25, 23, 1, 2, 2, 2, 1, 1);
        let (x, dy, exact) = setup(&shape);
        let dw = bfc_gemm_f32(GemmAlgo::Algo3, &shape, &x, &dy);
        assert!(mare(&dw, &exact) < 1e-5);
    }

    #[test]
    fn even_filters_and_asymmetric_padding() {
        let shape = ConvShape::new(2, 8, 8, 2, 2, 4, 4, 2, 2);
        let (x, dy, exact) = setup(&shape);
        let dw = bfc_gemm_f32(GemmAlgo::Algo1, &shape, &x, &dy);
        assert!(mare(&dw, &exact) < 1e-5);
    }

    #[test]
    fn fp16_matches_exact_loosely() {
        let shape = ConvShape::new(1, 8, 8, 2, 2, 3, 3, 1, 1);
        let x64 = Tensor4::<f64>::random_uniform([shape.n, shape.ih, shape.iw, shape.ic], 31, 1.0);
        let dy64 =
            Tensor4::<f64>::random_uniform([shape.n, shape.oh(), shape.ow(), shape.oc], 32, 0.01);
        let exact = direct::bfc_direct(&shape, &x64, &dy64);
        let dw = bfc_gemm_f16(&shape, &x64.cast(), &dy64.cast());
        let m = mare(&dw, &exact);
        assert!(m < 5e-3, "MARE {m}");
    }

    #[test]
    fn fp16_error_grows_with_accumulation_length() {
        // The Figure 12C phenomenon: longer accumulation -> worse Cu-Algo1
        // FP16 accuracy, because the running total is stored in binary16.
        let small = ConvShape::new(1, 16, 16, 1, 1, 3, 3, 1, 1);
        let large = ConvShape::new(16, 32, 32, 1, 1, 3, 3, 1, 1);
        let mut mares = Vec::new();
        for shape in [small, large] {
            let x64 =
                Tensor4::<f64>::random_uniform([shape.n, shape.ih, shape.iw, shape.ic], 41, 1.0);
            let dy64 = Tensor4::<f64>::random_uniform(
                [shape.n, shape.oh(), shape.ow(), shape.oc],
                42,
                0.01,
            );
            let exact = direct::bfc_direct(&shape, &x64, &dy64);
            let dw = bfc_gemm_f16(&shape, &x64.cast(), &dy64.cast());
            mares.push(mare(&dw, &exact));
        }
        assert!(
            mares[1] > 2.0 * mares[0],
            "expected growth: {:?}",
            mares
        );
    }

    #[test]
    fn workspace_ordering_matches_table2() {
        // Algo0 = 0, Algo3 small and shape-capped, Algo1 grows with O·F.
        let shape = ConvShape::vgg16_conv2(32);
        let w0 = workspace_bytes(GemmAlgo::Algo0, &shape);
        let w3 = workspace_bytes(GemmAlgo::Algo3, &shape);
        let w1 = workspace_bytes(GemmAlgo::Algo1, &shape);
        assert_eq!(w0, 0);
        assert!(w3 < w1, "w3 {w3} < w1 {w1}");
        assert!(w1 > 100 << 20, "Algo1 panel should be >100 MiB: {w1}");
    }

    #[test]
    fn flops_equal_direct_complexity() {
        let shape = ConvShape::new(2, 5, 5, 3, 4, 2, 2, 0, 0);
        assert_eq!(flops(&shape), shape.bfc_flops());
    }
}
