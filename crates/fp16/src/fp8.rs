//! Software FP8: the OCP 8-bit formats `E4M3` and `E5M2`.
//!
//! The paper's conclusion lists FP8 as a porting target after BF16. These
//! types implement the OCP "Open Compute Project 8-bit floating point"
//! specification as used by Hopper/Ada Tensor Cores:
//!
//! * **E4M3** — 1 sign, 4 exponent (bias 7), 3 mantissa bits. No infinity;
//!   `S.1111.111` is NaN; max finite = 448.
//! * **E5M2** — 1 sign, 5 exponent (bias 15), 2 mantissa bits. IEEE-style
//!   infinities and NaNs; max finite = 57344.
//!
//! Conversions use round-to-nearest-even with gradual underflow, the
//! hardware `cvt.rn.satfinite`-free semantics (overflow goes to NaN for
//! E4M3 — which has no infinity — and to ±∞ for E5M2).

use std::cmp::Ordering;
use std::fmt;

macro_rules! fp8_type {
    ($name:ident, $exp_bits:expr, $man_bits:expr, $bias:expr, $has_inf:expr, $doc:expr) => {
        #[doc = $doc]
        #[allow(non_camel_case_types)]
        #[derive(Clone, Copy, Default, PartialEq)]
        #[repr(transparent)]
        pub struct $name(pub u8);

        impl $name {
            /// Positive zero.
            pub const ZERO: $name = $name(0);
            const MAN_BITS: u32 = $man_bits;
            const BIAS: i32 = $bias;
            const EXP_MASK: u8 = (((1u16 << $exp_bits) - 1) as u8) << $man_bits;
            const MAN_MASK: u8 = ((1u16 << $man_bits) - 1) as u8;

            /// Reinterpret a bit pattern.
            pub const fn from_bits(bits: u8) -> $name {
                $name(bits)
            }

            /// The raw bit pattern.
            pub const fn to_bits(self) -> u8 {
                self.0
            }

            /// True for NaN.
            pub fn is_nan(self) -> bool {
                if $has_inf {
                    (self.0 & 0x7F) > Self::EXP_MASK
                } else {
                    // E4M3: only S.1111.111 is NaN.
                    (self.0 & 0x7F) == (Self::EXP_MASK | Self::MAN_MASK)
                }
            }

            /// True for ±∞ (always false for E4M3).
            pub fn is_infinite(self) -> bool {
                $has_inf && (self.0 & 0x7F) == Self::EXP_MASK
            }

            /// Largest finite value of the format.
            pub fn max_value() -> f32 {
                if $has_inf {
                    // E5M2: 1.75 × 2^15.
                    (2.0 - 2.0f32.powi(-(Self::MAN_BITS as i32)))
                        * 2.0f32.powi((Self::EXP_MASK >> Self::MAN_BITS) as i32 - 1 - Self::BIAS)
                } else {
                    // E4M3: S.1111.110 = 1.75 × 2^8 = 448.
                    (2.0 - 2.0 * 2.0f32.powi(-(Self::MAN_BITS as i32)))
                        * 2.0f32.powi((Self::EXP_MASK >> Self::MAN_BITS) as i32 - Self::BIAS)
                }
            }

            /// Round an `f32` into the format (RNE, gradual underflow).
            pub fn from_f32(x: f32) -> $name {
                let bits = x.to_bits();
                let sign = ((bits >> 24) & 0x80) as u8;
                if x.is_nan() {
                    return $name(sign | Self::EXP_MASK | Self::MAN_MASK);
                }
                let ax = x.abs();
                if ax > Self::max_value() {
                    // Overflow: round-to-nearest would exceed the largest
                    // finite; E5M2 -> ±inf, E4M3 -> NaN (no inf encoding).
                    // Values exactly between max and the next step round by
                    // magnitude; keep it simple: anything above max_value
                    // saturates per RNE only if within half a step.
                    let step = 2.0f32.powi(
                        ((Self::EXP_MASK >> Self::MAN_BITS) as i32)
                            - Self::BIAS
                            - Self::MAN_BITS as i32
                            - if $has_inf { 1 } else { 0 },
                    );
                    if ax < Self::max_value() + step / 2.0 {
                        return $name(sign | Self::max_bits());
                    }
                    return if $has_inf {
                        $name(sign | Self::EXP_MASK)
                    } else {
                        $name(sign | Self::EXP_MASK | Self::MAN_MASK) // NaN
                    };
                }
                if ax == 0.0 {
                    return $name(sign);
                }

                let exp = ((bits >> 23) & 0xFF) as i32 - 127; // unbiased
                let man = bits & 0x007F_FFFF;
                let min_norm_exp = 1 - Self::BIAS;
                if exp >= min_norm_exp {
                    // Normal range: RNE on the discarded mantissa bits; a
                    // mantissa carry propagates into the exponent via the
                    // integer addition.
                    let shift = 23 - Self::MAN_BITS;
                    let mut m = (man >> shift) as u16;
                    let rem = man & ((1u32 << shift) - 1);
                    let half = 1u32 << (shift - 1);
                    if rem > half || (rem == half && (m & 1) == 1) {
                        m += 1;
                    }
                    let e = (exp + Self::BIAS) as u16;
                    let assembled = (e << Self::MAN_BITS) + m;
                    if assembled > Self::max_bits() as u16 {
                        return if $has_inf {
                            $name(sign | Self::EXP_MASK)
                        } else {
                            $name(sign | Self::EXP_MASK | Self::MAN_MASK)
                        };
                    }
                    return $name(sign | assembled as u8);
                }
                // Subnormal range: value = m × 2^(min_norm_exp − MAN_BITS).
                let scale = 2.0f32.powi(min_norm_exp - Self::MAN_BITS as i32);
                let q = ax / scale;
                let floor = q.floor();
                let frac = q - floor;
                let mut m = floor as u8;
                if frac > 0.5 || (frac == 0.5 && (m & 1) == 1) {
                    m += 1;
                }
                if m > Self::MAN_MASK {
                    // Rounded up into the smallest normal.
                    return $name(sign | (1 << Self::MAN_BITS));
                }
                $name(sign | m)
            }

            /// Bit pattern of the largest finite positive value.
            const fn max_bits() -> u8 {
                if $has_inf {
                    // Exponent one below all-ones, full mantissa.
                    Self::EXP_MASK - (1 << Self::MAN_BITS) + Self::MAN_MASK
                } else {
                    // E4M3: all-ones exponent, mantissa just below NaN.
                    Self::EXP_MASK | (Self::MAN_MASK - 1)
                }
            }

            /// Widen to `f32` exactly.
            pub fn to_f32(self) -> f32 {
                let sign = if self.0 & 0x80 != 0 { -1.0f32 } else { 1.0 };
                let e = ((self.0 & Self::EXP_MASK) >> Self::MAN_BITS) as i32;
                let m = (self.0 & Self::MAN_MASK) as f32;
                if self.is_nan() {
                    return f32::NAN;
                }
                if self.is_infinite() {
                    return sign * f32::INFINITY;
                }
                let man_scale = 2.0f32.powi(-(Self::MAN_BITS as i32));
                if e == 0 {
                    sign * m * man_scale * 2.0f32.powi(1 - Self::BIAS)
                } else {
                    sign * (1.0 + m * man_scale) * 2.0f32.powi(e - Self::BIAS)
                }
            }
        }

        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &$name) -> Option<Ordering> {
                self.to_f32().partial_cmp(&other.to_f32())
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", self.to_f32(), stringify!($name))
            }
        }
    };
}

fp8_type!(
    e4m3,
    4,
    3,
    7,
    false,
    "OCP FP8 E4M3: 1-4-3 bits, bias 7, max finite 448, no infinities."
);
fp8_type!(
    e5m2,
    5,
    2,
    15,
    true,
    "OCP FP8 E5M2: 1-5-2 bits, bias 15, max finite 57344, IEEE Inf/NaN."
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4m3_constants() {
        assert_eq!(e4m3::max_value(), 448.0);
        assert_eq!(e4m3::from_f32(1.0).to_f32(), 1.0);
        assert_eq!(e4m3::from_f32(-2.5).to_f32(), -2.5);
        assert!(e4m3::from_f32(f32::NAN).is_nan());
        assert!(!e4m3::from_f32(1e9).is_infinite()); // E4M3 has no inf
        assert!(e4m3::from_f32(1e9).is_nan());
    }

    #[test]
    fn e5m2_constants() {
        assert_eq!(e5m2::max_value(), 57344.0);
        assert_eq!(e5m2::from_f32(1.0).to_f32(), 1.0);
        assert!(e5m2::from_f32(1e9).is_infinite());
        assert!(e5m2::from_f32(f32::NAN).is_nan());
    }

    #[test]
    fn e4m3_roundtrip_exhaustive() {
        for bits in 0u8..=0xFF {
            let v = e4m3::from_bits(bits);
            if v.is_nan() {
                assert!(e4m3::from_f32(v.to_f32()).is_nan());
            } else {
                assert_eq!(
                    e4m3::from_f32(v.to_f32()).to_bits(),
                    bits,
                    "bits {bits:#04x} value {}",
                    v.to_f32()
                );
            }
        }
    }

    #[test]
    fn e5m2_roundtrip_exhaustive() {
        for bits in 0u8..=0xFF {
            let v = e5m2::from_bits(bits);
            if v.is_nan() {
                assert!(e5m2::from_f32(v.to_f32()).is_nan());
            } else {
                assert_eq!(e5m2::from_f32(v.to_f32()).to_bits(), bits, "bits {bits:#04x}");
            }
        }
    }

    #[test]
    fn rne_ties_to_even() {
        // 1.0625 is exactly between 1.0 (mantissa 000) and 1.125 (001) in
        // E4M3: ties to even -> 1.0.
        assert_eq!(e4m3::from_f32(1.0625).to_f32(), 1.0);
        // 1.1875 is between 1.125 (001) and 1.25 (010): ties to even ->
        // 1.25.
        assert_eq!(e4m3::from_f32(1.1875).to_f32(), 1.25);
    }

    #[test]
    fn subnormals_are_gradual() {
        // Smallest E4M3 subnormal = 2^-9.
        let tiny = 2.0f32.powi(-9);
        assert_eq!(e4m3::from_f32(tiny).to_f32(), tiny);
        assert_eq!(e4m3::from_f32(tiny / 4.0).to_f32(), 0.0);
        // Smallest E5M2 subnormal = 2^-16.
        let tiny5 = 2.0f32.powi(-16);
        assert_eq!(e5m2::from_f32(tiny5).to_f32(), tiny5);
    }

    #[test]
    fn relative_error_bounded() {
        for i in 0..1000 {
            let x = 0.001f32 * i as f32 + 0.1;
            let r = e4m3::from_f32(x).to_f32();
            assert!((r - x).abs() <= x * 2.0f32.powi(-3), "x={x} r={r}");
            let r5 = e5m2::from_f32(x).to_f32();
            assert!((r5 - x).abs() <= x * 2.0f32.powi(-2), "x={x} r5={r5}");
        }
    }

    #[test]
    fn ordering_matches_f32() {
        let vals = [-4.0f32, -0.5, 0.0, 0.25, 1.0, 100.0];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    e4m3::from_f32(a).partial_cmp(&e4m3::from_f32(b)),
                    a.partial_cmp(&b)
                );
            }
        }
    }
}
