//! Google bfloat16: the top 16 bits of an IEEE-754 binary32.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// bfloat16: 1 sign bit, 8 exponent bits (f32-compatible range), 7 mantissa
/// bits. Conversion from `f32` is a round-to-nearest-even truncation of the
/// low 16 mantissa bits; conversion to `f32` is exact (append zero bits).
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(transparent)]
pub struct bf16(pub u16);

impl bf16 {
    /// Positive zero.
    pub const ZERO: bf16 = bf16(0x0000);
    /// One.
    pub const ONE: bf16 = bf16(0x3F80);
    /// Largest finite value, ≈ 3.39e38.
    pub const MAX: bf16 = bf16(0x7F7F);
    /// Machine epsilon, 2⁻⁷.
    pub const EPSILON: bf16 = bf16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: bf16 = bf16(0x7F80);
    /// A quiet NaN.
    pub const NAN: bf16 = bf16(0x7FC0);

    /// Reinterpret a bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> bf16 {
        bf16(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Convert from `f32` with round-to-nearest-even on the discarded 16
    /// mantissa bits. NaNs are quietened so the payload cannot truncate to an
    /// infinity pattern.
    pub fn from_f32(x: f32) -> bf16 {
        let bits = x.to_bits();
        if x.is_nan() {
            return bf16(((bits >> 16) as u16) | 0x0040);
        }
        let round_bit = 0x0000_8000u32;
        let lower = bits & 0xFFFF;
        let mut upper = (bits >> 16) as u16;
        if lower > round_bit || (lower == round_bit && (upper & 1) == 1) {
            upper = upper.wrapping_add(1); // carry may round to ±∞: correct
        }
        bf16(upper)
    }

    /// Convert to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Convert to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// True for NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7F80) == 0x7F80 && (self.0 & 0x007F) != 0
    }

    /// True for finite values.
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7F80) != 0x7F80
    }

    /// Sign-stripped value.
    pub fn abs(self) -> bf16 {
        bf16(self.0 & 0x7FFF)
    }
}

impl Neg for bf16 {
    type Output = bf16;
    fn neg(self) -> bf16 {
        bf16(self.0 ^ 0x8000)
    }
}

macro_rules! bf16_binop {
    ($trait:ident, $method:ident, $op:tt, $assign_trait:ident, $assign_method:ident) => {
        impl $trait for bf16 {
            type Output = bf16;
            fn $method(self, rhs: bf16) -> bf16 {
                bf16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
        impl $assign_trait for bf16 {
            fn $assign_method(&mut self, rhs: bf16) {
                *self = *self $op rhs;
            }
        }
    };
}

bf16_binop!(Add, add, +, AddAssign, add_assign);
bf16_binop!(Sub, sub, -, SubAssign, sub_assign);
bf16_binop!(Mul, mul, *, MulAssign, mul_assign);
bf16_binop!(Div, div, /, DivAssign, div_assign);

impl PartialOrd for bf16 {
    fn partial_cmp(&self, other: &bf16) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl From<f32> for bf16 {
    fn from(x: f32) -> bf16 {
        bf16::from_f32(x)
    }
}

impl From<bf16> for f32 {
    fn from(x: bf16) -> f32 {
        x.to_f32()
    }
}

impl fmt::Debug for bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}bf16", self.to_f32())
    }
}

impl fmt::Display for bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(bf16::ONE.to_f32(), 1.0);
        assert_eq!(bf16::EPSILON.to_f32(), 2.0f32.powi(-7));
        assert!(bf16::MAX.to_f32() > 3.3e38);
        assert!(bf16::NAN.is_nan());
    }

    #[test]
    fn roundtrip_exhaustive() {
        for bits in 0u16..=0xFFFF {
            let b = bf16::from_bits(bits);
            if b.is_nan() {
                assert!(bf16::from_f32(b.to_f32()).is_nan());
            } else {
                assert_eq!(bf16::from_f32(b.to_f32()).to_bits(), bits);
            }
        }
    }

    #[test]
    fn rne_on_truncated_bits() {
        // 1.0 + 2^-8 is halfway between 1.0 and 1 + 2^-7: even mantissa wins.
        assert_eq!(bf16::from_f32(1.0 + 2.0f32.powi(-8)).to_f32(), 1.0);
        // 1 + 3·2^-8 is halfway between 1+2^-7 and 1+2^-6: rounds to even
        // (mantissa 2 -> 1 + 2^-6).
        assert_eq!(
            bf16::from_f32(1.0 + 3.0 * 2.0f32.powi(-8)).to_f32(),
            1.0 + 2.0f32.powi(-6)
        );
    }

    #[test]
    fn huge_f32_survives() {
        // bf16 shares the f32 exponent range: 1e38 is finite.
        let b = bf16::from_f32(1e38);
        assert!(b.is_finite());
        assert!((b.to_f32() - 1e38).abs() / 1e38 < 0.01);
    }

    #[test]
    fn carry_at_max_rounds_to_infinity() {
        // bf16::MAX is 0x7F7F (odd mantissa). An f32 exactly halfway to the
        // next step ties upward, and the `wrapping_add(1)` carry ripples
        // through the mantissa into the exponent, producing the infinity
        // pattern 0x7F80 — the correctly rounded result.
        let halfway_up = f32::from_bits(0x7F7F_8000);
        assert_eq!(bf16::from_f32(halfway_up), bf16::INFINITY);
        assert_eq!(bf16::from_f32(-halfway_up).to_bits(), 0xFF80);
        // Anything past halfway overflows too; f32::MAX truncates to
        // 0x7F7F + a full tail of discarded ones.
        assert_eq!(bf16::from_f32(f32::MAX), bf16::INFINITY);
        assert_eq!(bf16::from_f32(f32::MIN).to_bits(), 0xFF80);
        // Just below halfway stays at MAX: no premature overflow.
        assert_eq!(bf16::from_f32(f32::from_bits(0x7F7F_7FFF)), bf16::MAX);
        // f32 infinities map straight to bf16 infinities (zero discarded
        // bits, so the rounding branch is never taken).
        assert_eq!(bf16::from_f32(f32::INFINITY), bf16::INFINITY);
        assert_eq!(bf16::from_f32(f32::NEG_INFINITY).to_bits(), 0xFF80);
    }

    #[test]
    fn carry_within_normals_reaches_next_binade() {
        // Same carry mechanism below the overflow threshold: 0x3FFF has an
        // all-ones mantissa; the halfway tie rounds it up to exactly 2.0
        // (0x4000), crossing the binade boundary.
        assert_eq!(bf16::from_f32(f32::from_bits(0x3FFF_8000)).to_f32(), 2.0);
        // Even mantissa at the tie stays put: 0x3FFE halfway keeps 0x3FFE.
        assert_eq!(
            bf16::from_f32(f32::from_bits(0x3FFE_8000)).to_bits(),
            0x3FFE
        );
    }

    #[test]
    fn arithmetic() {
        let a = bf16::from_f32(3.0);
        let b = bf16::from_f32(0.5);
        assert_eq!((a * b).to_f32(), 1.5);
        assert_eq!((a + b).to_f32(), 3.5);
        assert_eq!((a - b).to_f32(), 2.5);
        assert_eq!((a / b).to_f32(), 6.0);
        assert_eq!((-a).to_f32(), -3.0);
    }
}
