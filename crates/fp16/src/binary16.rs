//! IEEE-754 binary16 implemented over a `u16` bit pattern.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// IEEE-754 binary16: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa
/// bits.
///
/// Layout-compatible with hardware `__half`. All arithmetic operators
/// compute in `f32` and round the result back with round-to-nearest-even,
/// which matches the behaviour of scalar FP16 units (one rounding per
/// operation).
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(transparent)]
pub struct f16(pub u16);

impl f16 {
    /// Positive zero.
    pub const ZERO: f16 = f16(0x0000);
    /// One.
    pub const ONE: f16 = f16(0x3C00);
    /// Largest finite value, 65504.
    pub const MAX: f16 = f16(0x7BFF);
    /// Smallest positive normal value, 2⁻¹⁴ ≈ 6.10e-5.
    pub const MIN_POSITIVE: f16 = f16(0x0400);
    /// Smallest positive subnormal value, 2⁻²⁴ ≈ 5.96e-8.
    pub const MIN_SUBNORMAL: f16 = f16(0x0001);
    /// Machine epsilon, 2⁻¹⁰.
    pub const EPSILON: f16 = f16(0x1400);
    /// Positive infinity.
    pub const INFINITY: f16 = f16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: f16 = f16(0xFC00);
    /// A quiet NaN.
    pub const NAN: f16 = f16(0x7E00);

    /// Reinterpret a bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> f16 {
        f16(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Convert from `f32` with round-to-nearest-even, gradual underflow and
    /// overflow to ±∞. This is the hardware `cvt.rn.f16.f32` semantic.
    pub fn from_f32(x: f32) -> f16 {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN. Preserve NaN payload top bits, force quiet bit so a
            // signalling payload that truncates to zero does not become Inf.
            return if man == 0 {
                f16(sign | 0x7C00)
            } else {
                f16(sign | 0x7E00 | ((man >> 13) as u16 & 0x03FF))
            };
        }

        // Unbiased exponent in f32; f16 bias is 15.
        let unbiased = exp - 127;
        if unbiased >= 16 {
            // Overflows f16 range (max exponent is 15) -> ±∞.
            return f16(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal range. Keep 10 mantissa bits, RNE on the lower 13.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let mut half_man = (man >> 13) as u16;
            let round_bits = man & 0x1FFF;
            // Round up if above halfway, or exactly halfway and odd (RNE).
            if round_bits > 0x1000 || (round_bits == 0x1000 && (half_man & 1) == 1) {
                half_man += 1;
            }
            // A mantissa carry (half_man == 0x400) propagates into the
            // exponent via the addition; carrying past the max exponent
            // yields ±∞, which is the correctly rounded result.
            return f16(sign | (half_exp + half_man));
        }
        if unbiased >= -25 {
            // Subnormal f16 range: shift the (implicit-1) mantissa right.
            let full_man = man | 0x0080_0000; // restore hidden bit
            let shift = (-14 - unbiased) as u32 + 13;
            let half_man = (full_man >> shift) as u16;
            let rem = full_man & ((1u32 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            let rounded = if rem > halfway || (rem == halfway && (half_man & 1) == 1) {
                half_man + 1 // may round up into the smallest normal; correct
            } else {
                half_man
            };
            return f16(sign | rounded);
        }
        // Too small even for subnormals: ±0.
        f16(sign)
    }

    /// Convert to `f32` exactly (binary16 ⊂ binary32).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let man = (self.0 & 0x03FF) as u32;
        let bits = if exp == 0 {
            if man == 0 {
                sign // ±0
            } else {
                // Subnormal: value = man * 2^-24 with MSB of `man` at bit
                // k = 10 - shift. Normalised, that is 1.xxx * 2^(k-24).
                let shift = man.leading_zeros() - 21;
                let norm_exp = 127 - 14 - shift; // biased (k - 24) + 127
                let norm_man = (man << (13 + shift)) & 0x007F_FFFF;
                sign | (norm_exp << 23) | norm_man
            }
        } else if exp == 0x1F {
            sign | 0x7F80_0000 | (man << 13) // Inf / NaN
        } else {
            sign | ((exp + 127 - 15) << 23) | (man << 13)
        };
        f32::from_bits(bits)
    }

    /// Convert to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// Round an `f64` through `f32` then to binary16. Double rounding through
    /// f32 cannot change the binary16 result because f32 keeps 13 extra
    /// mantissa bits beyond binary16 plus the full exponent range.
    pub fn from_f64(x: f64) -> f16 {
        f16::from_f32(x as f32)
    }

    /// True for NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// True for ±∞.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// True for finite values (neither Inf nor NaN).
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// True for subnormal values.
    pub fn is_subnormal(self) -> bool {
        (self.0 & 0x7C00) == 0 && (self.0 & 0x03FF) != 0
    }

    /// Sign-aware absolute value.
    pub fn abs(self) -> f16 {
        f16(self.0 & 0x7FFF)
    }
}

impl Neg for f16 {
    type Output = f16;
    fn neg(self) -> f16 {
        f16(self.0 ^ 0x8000)
    }
}

macro_rules! f16_binop {
    ($trait:ident, $method:ident, $op:tt, $assign_trait:ident, $assign_method:ident) => {
        impl $trait for f16 {
            type Output = f16;
            fn $method(self, rhs: f16) -> f16 {
                f16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
        impl $assign_trait for f16 {
            fn $assign_method(&mut self, rhs: f16) {
                *self = *self $op rhs;
            }
        }
    };
}

f16_binop!(Add, add, +, AddAssign, add_assign);
f16_binop!(Sub, sub, -, SubAssign, sub_assign);
f16_binop!(Mul, mul, *, MulAssign, mul_assign);
f16_binop!(Div, div, /, DivAssign, div_assign);

impl PartialOrd for f16 {
    fn partial_cmp(&self, other: &f16) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl From<f32> for f16 {
    fn from(x: f32) -> f16 {
        f16::from_f32(x)
    }
}

impl From<f16> for f32 {
    fn from(x: f16) -> f32 {
        x.to_f32()
    }
}

impl fmt::Debug for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}f16", self.to_f32())
    }
}

impl fmt::Display for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_constants_roundtrip() {
        assert_eq!(f16::ONE.to_f32(), 1.0);
        assert_eq!(f16::MAX.to_f32(), 65504.0);
        assert_eq!(f16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(f16::MIN_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(f16::EPSILON.to_f32(), 2.0f32.powi(-10));
    }

    #[test]
    fn simple_values_are_exact() {
        for &v in &[0.0f32, 1.0, -1.0, 0.5, 2.0, 1024.0, -0.09375, 3.25] {
            assert_eq!(f16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn overflow_goes_to_infinity() {
        assert_eq!(f16::from_f32(65520.0), f16::INFINITY); // rounds up past MAX
        assert_eq!(f16::from_f32(1e9), f16::INFINITY);
        assert_eq!(f16::from_f32(-1e9), f16::NEG_INFINITY);
        // 65504 + half an ulp rounds back down to MAX (RNE, even mantissa).
        assert_eq!(f16::from_f32(65519.996), f16::MAX);
    }

    #[test]
    fn underflow_is_gradual() {
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f16::from_f32(tiny), f16::MIN_SUBNORMAL);
        // Below half the smallest subnormal -> zero.
        assert_eq!(f16::from_f32(tiny / 4.0), f16::ZERO);
        // Halfway between 0 and MIN_SUBNORMAL rounds to even (zero).
        assert_eq!(f16::from_f32(tiny / 2.0), f16::ZERO);
        // Just above halfway rounds up.
        assert!(f16::from_f32(tiny * 0.50001).to_f32() > 0.0);
    }

    #[test]
    fn round_to_nearest_even_at_mantissa_boundary() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: ties to even
        // keeps mantissa 0 -> 1.0.
        assert_eq!(f16::from_f32(1.0 + 2.0f32.powi(-11)).to_f32(), 1.0);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even
        // rounds mantissa up to 2 -> 1 + 2^-9.
        assert_eq!(
            f16::from_f32(1.0 + 3.0 * 2.0f32.powi(-11)).to_f32(),
            1.0 + 2.0f32.powi(-9)
        );
        // Slightly above halfway always rounds up.
        assert_eq!(
            f16::from_f32(1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20)).to_f32(),
            1.0 + 2.0f32.powi(-10)
        );
    }

    #[test]
    fn mantissa_carry_into_exponent() {
        // 1.9995117 (mantissa all ones) + rounding -> 2.0 exactly.
        let nearly_two = f16::from_bits(0x3FFF).to_f32(); // 1.9990234
        let just_above = nearly_two + 2.0f32.powi(-11) + 2.0f32.powi(-18);
        assert_eq!(f16::from_f32(just_above).to_f32(), 2.0);
    }

    #[test]
    fn nan_propagates() {
        assert!(f16::from_f32(f32::NAN).is_nan());
        assert!(f16::NAN.is_nan());
        assert!(f16::NAN.to_f32().is_nan());
        assert!((f16::ONE / f16::ZERO).is_infinite());
        assert!((f16::ZERO / f16::ZERO).is_nan());
    }

    #[test]
    fn subnormal_to_f32_exact() {
        for bits in 1u16..0x0400 {
            let h = f16::from_bits(bits);
            let expected = bits as f32 * 2.0f32.powi(-24);
            assert_eq!(h.to_f32(), expected, "subnormal bits {bits:#x}");
        }
    }

    #[test]
    fn all_finite_values_roundtrip_through_f32() {
        // Exhaustive: every finite f16 must roundtrip exactly.
        for bits in 0u16..=0xFFFF {
            let h = f16::from_bits(bits);
            if h.is_nan() {
                assert!(f16::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(f16::from_f32(h.to_f32()).to_bits(), bits, "bits {bits:#x}");
            }
        }
    }

    /// Round a non-negative f64 to an integer with round-half-to-even.
    /// Written from the rounding definition, independently of the bit
    /// manipulation in `from_f32`, so the two can cross-check each other.
    fn rne_to_int(q: f64) -> u64 {
        let floor = q.floor();
        let frac = q - floor;
        let f = floor as u64;
        if frac > 0.5 || (frac == 0.5 && f % 2 == 1) {
            f + 1
        } else {
            f
        }
    }

    /// Reference conversion for |v| < 2⁻¹³: both binary16 subnormals and
    /// the smallest normal binade have ulp 2⁻²⁴, so the correctly rounded
    /// bit pattern is just RNE quantisation in units of 2⁻²⁴. The scaling
    /// by 2²⁴ is exact in f64 (power of two), so this reference is exact.
    fn ref_f16_bits_tiny(v: f32) -> u16 {
        assert!(v.abs() < 2.0f32.powi(-13));
        let sign = if v.is_sign_negative() { 0x8000u16 } else { 0 };
        let q = (v.abs() as f64) * (1u64 << 24) as f64;
        sign | rne_to_int(q) as u16
    }

    #[test]
    fn subnormal_boundary_matches_f64_reference() {
        // Sweep every source exponent that lands in or below the binary16
        // subnormal range, unbiased ∈ [-25, -14]: targeted mantissas around
        // each exponent's RNE halfway patterns plus deterministic samples.
        for unbiased in -25i32..=-14 {
            let exp_bits = ((unbiased + 127) as u32) << 23;
            // Mirror of from_f32's shift; = 24 at unbiased = -25 (the edge).
            let shift = if unbiased >= -14 {
                13u32
            } else {
                (-14 - unbiased) as u32 + 13
            };
            let halfway = 1u32 << (shift - 1);
            let mut mans = vec![0u32, 1, 0x40_0000, 0x7F_FFFF];
            for base in [0u32, 1 << (shift % 24), 3 << (shift % 24), 0x7F_FFFF] {
                for delta in [halfway - 1, halfway, halfway + 1] {
                    mans.push((base ^ delta) & 0x7F_FFFF);
                    mans.push((base | delta) & 0x7F_FFFF);
                }
            }
            let mut s = 0x9E37_79B9_7F4A_7C15u64 ^ (unbiased as u64);
            for _ in 0..500 {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                mans.push((s >> 40) as u32 & 0x7F_FFFF);
            }
            for man in mans {
                for sign in [0u32, 0x8000_0000] {
                    let v = f32::from_bits(sign | exp_bits | man);
                    let got = f16::from_f32(v).to_bits();
                    let want = ref_f16_bits_tiny(v);
                    assert_eq!(
                        got,
                        want,
                        "v = {v:e} (bits {:#010x}, unbiased {unbiased}, shift {shift})",
                        v.to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn shift_24_edge_cases() {
        // unbiased = -25 drives shift to its maximum of 24: the entire
        // 24-bit significand is below the result, and rounding decides
        // between zero and MIN_SUBNORMAL.
        let ulp = 2.0f32.powi(-24);
        // Exactly half an ulp: tie, result mantissa 0 is even -> zero.
        assert_eq!(f16::from_f32(ulp / 2.0), f16::ZERO);
        assert_eq!(f16::from_f32(-ulp / 2.0).to_bits(), 0x8000);
        // The next f32 above half an ulp breaks the tie upward.
        let above = f32::from_bits((ulp / 2.0).to_bits() + 1);
        assert_eq!(f16::from_f32(above), f16::MIN_SUBNORMAL);
        // Below half an ulp: zero regardless of mantissa.
        let below = f32::from_bits((ulp / 2.0).to_bits() - 1);
        assert_eq!(f16::from_f32(below), f16::ZERO);

        // RNE halfway cases one binade up (shift = 23): 1.5 ulp sits between
        // subnormal mantissas 1 (odd) and 2 (even) -> 2; 2.5 ulp between 2
        // and 3 -> stays 2.
        assert_eq!(f16::from_f32(1.5 * ulp).to_bits(), 0x0002);
        assert_eq!(f16::from_f32(2.5 * ulp).to_bits(), 0x0002);
        assert_eq!(f16::from_f32(3.5 * ulp).to_bits(), 0x0004);

        // Rounding up out of the subnormal range must land exactly on the
        // smallest normal (the `half_man + 1` carry at the top of the range).
        let just_under_normal = f32::from_bits((2.0f32.powi(-14)).to_bits() - 1);
        assert_eq!(f16::from_f32(just_under_normal), f16::MIN_POSITIVE);
    }

    #[test]
    fn arithmetic_rounds_once() {
        // 1.0 + eps/2 in f16 is 1.0 (the addend vanishes below the mantissa).
        let one = f16::ONE;
        let half_eps = f16::from_f32(2.0f32.powi(-11));
        assert_eq!(one + half_eps, one);
        // Basic sanity of the four operators.
        let a = f16::from_f32(3.5);
        let b = f16::from_f32(0.5);
        assert_eq!((a + b).to_f32(), 4.0);
        assert_eq!((a - b).to_f32(), 3.0);
        assert_eq!((a * b).to_f32(), 1.75);
        assert_eq!((a / b).to_f32(), 7.0);
    }

    #[test]
    fn neg_and_abs_are_bit_ops() {
        let x = f16::from_f32(2.5);
        assert_eq!((-x).to_f32(), -2.5);
        assert_eq!((-x).abs().to_f32(), 2.5);
        assert_eq!((-f16::ZERO).to_bits(), 0x8000);
    }

    #[test]
    fn ordering_matches_f32() {
        let vals = [-2.0f32, -0.5, 0.0, 0.25, 1.0, 100.0];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    f16::from_f32(a).partial_cmp(&f16::from_f32(b)),
                    a.partial_cmp(&b)
                );
            }
        }
    }
}
