#![warn(missing_docs)]
// Unit tests assert on known-good values; unwrap is fine there.
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! Software half-precision floating point: IEEE-754 `binary16` ([`f16`]) and
//! Google `bfloat16` ([`bf16`]).
//!
//! The WinRS paper's FP16 kernels run on Tensor Cores: inputs are stored in
//! binary16, multiply–accumulate happens in FP32, and results are rounded
//! back to binary16 on store. Reproducing the paper's accuracy experiments
//! (Table 4, Figure 12) therefore requires bit-accurate binary16 conversion
//! semantics — in particular round-to-nearest-even, gradual underflow to
//! subnormals, and saturation-free overflow to ±∞. This crate implements
//! those conversions from first principles (no `half` dependency) and keeps
//! arithmetic semantics explicit: every binary operation is computed in f32
//! and rounded once, exactly like a scalar FP16 FMA-free ALU.
//!
//! `bf16` is provided because the paper names BF16 as the first porting
//! target in its conclusion; it shares the f32 exponent range so conversion
//! is a pure mantissa rounding.

mod bfloat16;
mod fp8;
mod binary16;

pub use bfloat16::bf16;
pub use binary16::f16;
pub use fp8::{e4m3, e5m2};

/// Round an `f32` slice into a freshly allocated `f16` vector.
pub fn to_f16_vec(xs: &[f32]) -> Vec<f16> {
    xs.iter().map(|&x| f16::from_f32(x)).collect()
}

/// Widen an `f16` slice into a freshly allocated `f32` vector.
pub fn to_f32_vec(xs: &[f16]) -> Vec<f32> {
    xs.iter().map(|x| x.to_f32()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_roundtrip() {
        let xs = vec![0.0f32, 1.0, -2.5, 65504.0];
        let halves = to_f16_vec(&xs);
        assert_eq!(to_f32_vec(&halves), xs);
    }
}
