//! Small dense matrices over [`Rational`], sized for Winograd transform
//! derivation (dimensions ≤ 16 in practice, no size limit enforced).

use crate::Rational;
use std::fmt;
use std::ops::{Index, IndexMut, Mul};

/// A row-major dense matrix of exact rationals.
#[derive(Clone, PartialEq, Eq)]
pub struct RatMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl RatMatrix {
    /// All-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RatMatrix {
            rows,
            cols,
            data: vec![Rational::ZERO; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = RatMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Rational::ONE;
        }
        m
    }

    /// Build from a row-major closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Rational) -> Self {
        let mut m = RatMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Build from nested slices (each inner slice is one row).
    pub fn from_rows(rows: &[Vec<Rational>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(
            rows.iter().all(|row| row.len() == c),
            "ragged rows in RatMatrix::from_rows"
        );
        RatMatrix {
            rows: r,
            cols: c,
            data: rows.concat(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        RatMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Exact inverse via Gauss–Jordan elimination with partial (nonzero)
    /// pivoting. Panics if the matrix is singular or non-square.
    pub fn inverse(&self) -> Self {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = RatMatrix::identity(n);
        for col in 0..n {
            // Find a nonzero pivot (exact arithmetic: any nonzero works).
            let pivot_row = (col..n)
                .find(|&r| !a[(r, col)].is_zero())
                // winrs-audit: allow(error-hygiene) — exact-arithmetic table
                // construction: a singular Vandermonde system is a programming
                // error in the point set, not a runtime condition to recover.
                .unwrap_or_else(|| panic!("singular matrix in RatMatrix::inverse (col {col})"));
            if pivot_row != col {
                a.swap_rows(pivot_row, col);
                inv.swap_rows(pivot_row, col);
            }
            let pivot = a[(col, col)];
            for j in 0..n {
                a[(col, j)] /= pivot;
                inv[(col, j)] /= pivot;
            }
            for r in 0..n {
                if r != col && !a[(r, col)].is_zero() {
                    let factor = a[(r, col)];
                    for j in 0..n {
                        let av = a[(col, j)];
                        let iv = inv[(col, j)];
                        a[(r, j)] -= factor * av;
                        inv[(r, j)] -= factor * iv;
                    }
                }
            }
        }
        inv
    }

    fn swap_rows(&mut self, r0: usize, r1: usize) {
        if r0 == r1 {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(r0 * self.cols + j, r1 * self.cols + j);
        }
    }

    /// Scale every element of row `r` by `s`.
    pub fn scale_row(&mut self, r: usize, s: Rational) {
        for j in 0..self.cols {
            self[(r, j)] *= s;
        }
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &[Rational]) -> Vec<Rational> {
        assert_eq!(v.len(), self.cols, "mul_vec dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = Rational::ZERO;
                for j in 0..self.cols {
                    acc += self[(i, j)] * v[j];
                }
                acc
            })
            .collect()
    }

    /// Row-major `f64` rendering of the matrix.
    pub fn to_f64(&self) -> Vec<f64> {
        self.data.iter().map(Rational::to_f64).collect()
    }

    /// Row-major `f32` rendering of the matrix.
    pub fn to_f32(&self) -> Vec<f32> {
        self.data.iter().map(Rational::to_f32).collect()
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[Rational] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// L1 norm of row `i` (sum of absolute values).
    pub fn row_l1_norm(&self, i: usize) -> Rational {
        self.row(i)
            .iter()
            .fold(Rational::ZERO, |acc, x| acc + x.abs())
    }

    /// Largest absolute element of the matrix.
    pub fn max_abs(&self) -> Rational {
        self.data
            .iter()
            .map(Rational::abs)
            .max()
            .unwrap_or(Rational::ZERO)
    }

    /// Smallest nonzero absolute element of the matrix, if any.
    pub fn min_abs_nonzero(&self) -> Option<Rational> {
        self.data
            .iter()
            .filter(|x| !x.is_zero())
            .map(Rational::abs)
            .min()
    }
}

impl Index<(usize, usize)> for RatMatrix {
    type Output = Rational;
    fn index(&self, (i, j): (usize, usize)) -> &Rational {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for RatMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Rational {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Mul<&RatMatrix> for &RatMatrix {
    type Output = RatMatrix;
    fn mul(self, rhs: &RatMatrix) -> RatMatrix {
        assert_eq!(self.cols, rhs.rows, "matrix product dimension mismatch");
        RatMatrix::from_fn(self.rows, rhs.cols, |i, j| {
            let mut acc = Rational::ZERO;
            for k in 0..self.cols {
                acc += self[(i, k)] * rhs[(k, j)];
            }
            acc
        })
    }
}

impl fmt::Debug for RatMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RatMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>8} ", format!("{}", self[(i, j)]))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat;

    #[test]
    fn identity_times_anything() {
        let m = RatMatrix::from_fn(3, 3, |i, j| rat((i * 3 + j) as i128, 1));
        let id = RatMatrix::identity(3);
        assert_eq!(&id * &m, m);
        assert_eq!(&m * &id, m);
    }

    #[test]
    fn transpose_involution() {
        let m = RatMatrix::from_fn(2, 4, |i, j| rat(i as i128 + 1, j as i128 + 1));
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().nrows(), 4);
        assert_eq!(m.transpose().ncols(), 2);
    }

    #[test]
    fn inverse_of_vandermonde() {
        // Vandermonde at points 0, 1, -1 is well-conditioned and invertible.
        let points = [rat(0, 1), rat(1, 1), rat(-1, 1)];
        let v = RatMatrix::from_fn(3, 3, |i, j| points[i].pow(j as i32));
        let inv = v.inverse();
        assert_eq!(&v * &inv, RatMatrix::identity(3));
        assert_eq!(&inv * &v, RatMatrix::identity(3));
    }

    #[test]
    fn inverse_with_fractional_entries() {
        let m = RatMatrix::from_rows(&[
            vec![rat(1, 2), rat(1, 3)],
            vec![rat(1, 4), rat(1, 5)],
        ]);
        let inv = m.inverse();
        assert_eq!(&m * &inv, RatMatrix::identity(2));
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_inverse_panics() {
        let m = RatMatrix::from_rows(&[
            vec![rat(1, 1), rat(2, 1)],
            vec![rat(2, 1), rat(4, 1)],
        ]);
        let _ = m.inverse();
    }

    #[test]
    fn mul_vec_matches_manual() {
        let m = RatMatrix::from_rows(&[
            vec![rat(1, 1), rat(2, 1)],
            vec![rat(3, 1), rat(4, 1)],
        ]);
        let v = [rat(5, 1), rat(6, 1)];
        assert_eq!(m.mul_vec(&v), vec![rat(17, 1), rat(39, 1)]);
    }

    #[test]
    fn row_l1_and_extrema() {
        let m = RatMatrix::from_rows(&[
            vec![rat(-1, 2), rat(1, 4)],
            vec![rat(0, 1), rat(3, 1)],
        ]);
        assert_eq!(m.row_l1_norm(0), rat(3, 4));
        assert_eq!(m.max_abs(), rat(3, 1));
        assert_eq!(m.min_abs_nonzero(), Some(rat(1, 4)));
    }

    #[test]
    fn to_f64_roundtrip_for_dyadics() {
        let m = RatMatrix::from_rows(&[vec![rat(1, 2), rat(-3, 8)]]);
        assert_eq!(m.to_f64(), vec![0.5, -0.375]);
        assert_eq!(m.to_f32(), vec![0.5f32, -0.375f32]);
    }
}
