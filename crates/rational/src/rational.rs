//! An exact rational number over `i128`, always kept in lowest terms with a
//! positive denominator.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A rational number `num/den` in lowest terms, `den > 0`.
///
/// Arithmetic is checked: overflow of the 128-bit intermediate panics with a
/// descriptive message instead of wrapping. The magnitudes occurring during
/// Cook–Toom derivation for transform sizes up to α = 16 with interpolation
/// points up to ±4 stay far below `i128::MAX` (worst observed denominators
/// are ~10^12), so panics indicate a genuine logic error.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

#[inline]
fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// 0/1.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// 1/1.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct `num/den` reduced to lowest terms. Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "Rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The integer `n` as a rational.
    pub const fn integer(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Integer power (negative exponents allowed for nonzero values).
    pub fn pow(&self, exp: i32) -> Self {
        if exp == 0 {
            return Rational::ONE;
        }
        let base = if exp < 0 { self.recip() } else { *self };
        let mut acc = Rational::ONE;
        for _ in 0..exp.unsigned_abs() {
            acc *= base;
        }
        acc
    }

    /// Nearest `f64`. Exact when numerator and denominator are exactly
    /// representable and the quotient rounds once (true for all transform
    /// entries this repo produces).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Nearest `f32` via the `f64` value.
    pub fn to_f32(&self) -> f32 {
        self.to_f64() as f32
    }

    fn checked_new(num: Option<i128>, den: Option<i128>, op: &str) -> Self {
        match (num, den) {
            (Some(n), Some(d)) => Rational::new(n, d),
            // winrs-audit: allow(error-hygiene) — i128 overflow during exact
            // transform-table construction is unrecoverable by design; the
            // documented contract of this crate is to abort construction.
            _ => panic!("Rational overflow in {op}"),
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::integer(n as i128)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::integer(n as i128)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        // a/b + c/d = (a*d + c*b) / (b*d), reduced by g = gcd(b, d) early to
        // keep intermediates small.
        let g = gcd(self.den, rhs.den).max(1);
        let lhs_scaled = self.num.checked_mul(rhs.den / g);
        let rhs_scaled = rhs.num.checked_mul(self.den / g);
        let num = match (lhs_scaled, rhs_scaled) {
            (Some(a), Some(b)) => a.checked_add(b),
            _ => None,
        };
        let den = (self.den / g).checked_mul(rhs.den);
        Rational::checked_new(num, den, "add")
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce before multiplying to delay overflow.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        let num = (self.num / g1).checked_mul(rhs.num / g2);
        let den = (self.den / g2).checked_mul(rhs.den / g1);
        Rational::checked_new(num, den, "mul")
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b = a · b⁻¹ is the definition
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}
impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}
impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}
impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d (b, d > 0)  <=>  a*d vs c*b.
        let lhs = self.num.checked_mul(other.den);
        let rhs = other.num.checked_mul(self.den);
        match (lhs, rhs) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                // winrs-audit: allow(error-hygiene) — den > 0 invariant means
                // both f64 images are non-NaN, so partial_cmp cannot be None.
                .expect("rational comparison"),
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        let r = Rational::new(6, 8);
        assert_eq!(r.numer(), 3);
        assert_eq!(r.denom(), 4);
    }

    #[test]
    fn sign_normalised_to_numerator() {
        let r = Rational::new(3, -4);
        assert_eq!(r.numer(), -3);
        assert_eq!(r.denom(), 4);
        assert_eq!(Rational::new(-3, -4), Rational::new(3, 4));
    }

    #[test]
    fn zero_reduces() {
        let r = Rational::new(0, -17);
        assert_eq!(r, Rational::ZERO);
        assert!(r.is_zero());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn pow_and_recip() {
        let half = Rational::new(1, 2);
        assert_eq!(half.pow(3), Rational::new(1, 8));
        assert_eq!(half.pow(-2), Rational::integer(4));
        assert_eq!(half.pow(0), Rational::ONE);
        assert_eq!(half.recip(), Rational::integer(2));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_of_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert_eq!(
            Rational::new(2, 4).cmp(&Rational::new(1, 2)),
            Ordering::Equal
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Rational::new(1, 4).to_f64(), 0.25);
        assert_eq!(Rational::new(-3, 8).to_f32(), -0.375);
        assert_eq!(Rational::from(7i64), Rational::integer(7));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Rational::new(3, 4)), "3/4");
        assert_eq!(format!("{}", Rational::integer(-5)), "-5");
    }

    #[test]
    fn abs_is_nonnegative() {
        assert_eq!(Rational::new(-7, 3).abs(), Rational::new(7, 3));
    }

    #[test]
    fn add_with_common_factors_avoids_blowup() {
        // Denominators share large factors: early gcd keeps this in range.
        let big = 1i128 << 60;
        let a = Rational::new(1, big);
        let b = Rational::new(1, big);
        assert_eq!(a + b, Rational::new(2, big));
    }
}
