#![warn(missing_docs)]
// Unit tests assert on known-good values; unwrap is fine there.
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! Exact rational arithmetic and small dense rational matrices.
//!
//! This crate is the numerical foundation for deriving Winograd transform
//! matrices via the Cook–Toom construction (see `winrs-winograd`). Transform
//! matrices must be derived *exactly*: they are products and inverses of
//! Vandermonde-style matrices whose entries are small rationals, and any
//! floating-point rounding during derivation would contaminate every
//! convolution computed with them. All arithmetic here is performed over
//! `i128` fractions in lowest terms, with checked operations that panic
//! loudly on overflow rather than silently wrapping.
//!
//! The crate deliberately has no dependencies; it is a leaf substrate.

mod matrix;
mod rational;

pub use matrix::RatMatrix;
pub use rational::Rational;

/// Convenience constructor: `rat(3, 4)` is 3/4 in lowest terms.
pub fn rat(num: i128, den: i128) -> Rational {
    Rational::new(num, den)
}
