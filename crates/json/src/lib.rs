#![warn(missing_docs)]
// Unit tests assert on known-good values; unwrap is fine there.
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! Minimal hand-rolled JSON value tree.
//!
//! This build is offline and dependency-free, so instead of `serde` the
//! workspace renders its machine-readable artifacts — bench baselines and
//! the on-disk tuning database — through this tiny value tree. Emitted
//! documents carry a `schema` tag (e.g. `winrs-bench-v1`,
//! `winrs-tune-v1`) so downstream tooling (`scripts/ci.sh`, regression
//! diffing, warm-start loading) can reject files it does not understand.
//! The schema constants themselves live with their writers; this crate is
//! only the value tree.

use std::fmt::Write as _;

/// A JSON value. Construct with the enum variants or the helper ctors,
/// then [`Json::render`] it.
pub enum Json {
    /// `null` — also the rendering of non-finite numbers.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept separate from `Num` so counters render without a
    /// fractional part).
    Int(i64),
    /// A finite float; NaN/∞ render as `null` (JSON has no spelling for
    /// them).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Render into `out` as compact JSON (no whitespace).
    pub fn render(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }

    /// Render to a fresh string with a trailing newline (file convention).
    pub fn to_document(&self) -> String {
        let mut out = String::new();
        self.render(&mut out);
        out.push('\n');
        out
    }

    /// Parse a JSON document (the inverse of [`Json::render`], accepting
    /// arbitrary inter-token whitespace). Returns a description of the
    /// first syntax error instead of panicking — baseline and tuning-db
    /// files come from disk and may be stale, torn, or hand-edited.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Int` and `Num` both read as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, "\"")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the full UTF-8 scalar starting here.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

/// Append `s` as a quoted, escaped JSON string.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        let mut out = String::new();
        escape_into("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn parse_roundtrips_rendered_document() {
        let doc = Json::obj(vec![
            ("schema", Json::str("winrs-json-test")),
            ("ok", Json::Bool(true)),
            ("count", Json::Int(3)),
            ("ratio", Json::Num(0.5)),
            ("name", Json::str("a\"b\\c\nd")),
            ("items", Json::Arr(vec![Json::Int(1), Json::Null])),
        ]);
        let parsed = Json::parse(&doc.to_document()).expect("round-trip parse");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("winrs-json-test")
        );
        assert_eq!(parsed.get("count").and_then(Json::as_f64), Some(3.0));
        assert_eq!(parsed.get("ratio").and_then(Json::as_f64), Some(0.5));
        assert_eq!(
            parsed.get("name").and_then(Json::as_str),
            Some("a\"b\\c\nd")
        );
        let items = parsed.get("items").and_then(Json::items).expect("array");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert!(matches!(items[1], Json::Null));
        assert!(matches!(parsed.get("ok"), Some(Json::Bool(true))));
        assert!(parsed.get("missing").is_none());
    }

    #[test]
    fn parse_accepts_whitespace_and_rejects_garbage() {
        let ok = Json::parse(" { \"a\" : [ 1 , -2.5e1 ] } \n").expect("whitespace ok");
        let items = ok.get("a").and_then(Json::items).expect("array");
        assert_eq!(items[1].as_f64(), Some(-25.0));
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2] trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn renders_nested_document() {
        let doc = Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("count", Json::Int(3)),
            ("ratio", Json::Num(0.5)),
            ("nan", Json::Num(f64::NAN)),
            ("items", Json::Arr(vec![Json::Int(1), Json::Null])),
        ]);
        assert_eq!(
            doc.to_document(),
            "{\"ok\":true,\"count\":3,\
             \"ratio\":0.5,\"nan\":null,\"items\":[1,null]}\n"
        );
    }
}
