//! Integration: the paper's headline numbers, asserted end-to-end through
//! the public API. Each test names the claim it pins down.

use winrs::conv::ConvShape;
use winrs::core::{Precision, WinRsPlan};
use winrs::gpu::{bfc_block_count, fc_block_count, BlockGeometry, RTX_4090};
use winrs_bench::{cu_gemm_best, paper_sweep, Algo};

#[test]
fn abstract_claim_workspace_below_4_percent_of_fft_and_winnf() {
    // "WinRS uses less than 4% workspace of cuDNN FFT and Winograd".
    // Like the paper, compare *average* workspace per algorithm over the
    // shapes each supports.
    let sweep = paper_sweep();
    let avg = |algo: Algo| -> f64 {
        let pts: Vec<f64> = sweep
            .iter()
            .filter(|w| algo.supports(&w.shape, Precision::Fp32))
            .map(|w| algo.workspace_bytes(&w.shape, &RTX_4090) as f64)
            .collect();
        assert!(!pts.is_empty());
        pts.iter().sum::<f64>() / pts.len() as f64
    };
    let winrs = avg(Algo::WinRs);
    assert!(winrs / avg(Algo::CuFft) < 0.04);
    assert!(winrs / avg(Algo::CuWinNF) < 0.04);
}

#[test]
fn abstract_claim_speedup_over_gemm_with_comparable_workspace() {
    // "WinRS achieves 1.05× to 4.7× speedup over cuDNN GEMM using
    // comparable workspace" — modelled speedup in (1, 5) and workspace
    // within a small multiple of Cu-Algo3's.
    let sweep = paper_sweep();
    for w in sweep.iter().filter(|w| w.shape.fh >= 3) {
        let winrs = Algo::WinRs.costs(&w.shape, &RTX_4090, Precision::Fp32);
        let gemm = cu_gemm_best(&w.shape, &RTX_4090, Precision::Fp32);
        let speedup = gemm.time / winrs.time;
        assert!(
            speedup > 1.0 && speedup < 6.0,
            "{}: speedup {speedup:.2}",
            w.label
        );
    }
}

#[test]
fn intro_claim_flop_reduction_band() {
    // "reducing time complexity by 1.5× to 4.5×" (clipping adds a little).
    for w in paper_sweep() {
        let plan = WinRsPlan::new(&w.shape, &RTX_4090, Precision::Fp32).unwrap();
        let red = plan.flop_reduction();
        assert!(
            (1.4..=5.5).contains(&red),
            "{}: reduction {red:.2}",
            w.label
        );
    }
}

#[test]
fn figure2_exact_block_counts() {
    let s = ConvShape::vgg16_conv2(32);
    assert_eq!(
        fc_block_count(BlockGeometry::FIG2, s.oc, s.n, s.oh(), s.ow(), 2, 2),
        12544
    );
    assert_eq!(
        bfc_block_count(BlockGeometry::FIG2, s.oc, s.ic, s.fh, s.fw, 2, 2),
        8
    );
}

#[test]
fn figure5_exact_pair_for_fw3_ow16() {
    let pair = winrs::core::config::pair::select_pair(3, 16, Precision::Fp32);
    assert_eq!(format!("{}", pair.bulk), "Ω8(3,6)");
    assert_eq!(format!("{}", pair.residual.unwrap()), "Ω4(3,2)");
    assert_eq!(pair.bulk_width(), 12);
    assert_eq!(pair.residual_width(), 4);
}

#[test]
fn fp16_speedup_near_3x() {
    // "WinRS achieves 3.27× the throughput of its FP32 CUDA-Core version".
    let mut total = 0.0;
    let mut count = 0;
    for w in paper_sweep().iter().filter(|w| w.shape.fh % 2 == 1) {
        let t32 = Algo::WinRs.costs(&w.shape, &RTX_4090, Precision::Fp32).time;
        let t16 = Algo::WinRs.costs(&w.shape, &RTX_4090, Precision::Fp16).time;
        total += t32 / t16;
        count += 1;
    }
    let avg = total / count as f64;
    assert!((2.2..=4.5).contains(&avg), "average FP16 speedup {avg:.2}");
}

#[test]
fn average_workspace_fraction_is_small() {
    // "a small average workspace 18% of data size" — ours comes out even
    // smaller (the sweep differs); assert the order of magnitude.
    let sweep = paper_sweep();
    let avg: f64 = sweep
        .iter()
        .map(|w| {
            let plan = WinRsPlan::new(&w.shape, &RTX_4090, Precision::Fp32).unwrap();
            plan.workspace_bytes() as f64 / w.shape.data_bytes(4) as f64
        })
        .sum::<f64>()
        / sweep.len() as f64;
    assert!(avg < 0.25, "average workspace fraction {avg:.3}");
}

#[test]
fn measured_workspace_peak_is_exactly_z_minus_1_gradw() {
    // §4: "the workspace of WinRS is (Z−1)·|∇W|". Not just the planned
    // figure — the *measured* peak of a real execution must land on the
    // formula exactly, and on the layout the plan publishes.
    use winrs::core::fallback::{run_planned, NumericGuard};
    use winrs::tensor::Tensor4;
    for &(res, f, z_hat) in &[(16usize, 3usize, 4usize), (20, 2, 3), (18, 5, 2)] {
        let conv = ConvShape::square(1, res, 2, 2, f);
        let plan = WinRsPlan::with_z_hat(&conv, &RTX_4090, Precision::Fp32, z_hat)
            .expect("in-envelope shape");
        assert!(plan.z() > 1, "res={res} f={f}: want a segmented plan");
        let x = Tensor4::<f32>::random_uniform([conv.n, conv.ih, conv.iw, conv.ic], 51, 1.0);
        let dy = Tensor4::<f32>::random_uniform([conv.n, conv.oh(), conv.ow(), conv.oc], 52, 1.0);
        let (_, report) = run_planned(&plan, &x, &dy, NumericGuard::Ignore).unwrap();
        let dw_bytes = conv.dw_elems() * 4;
        assert_eq!(
            report.mem.workspace_bytes_peak,
            (plan.z() - 1) * dw_bytes,
            "res={res} f={f} z={}",
            plan.z()
        );
        assert_eq!(
            report.mem.workspace_bytes_peak,
            plan.workspace_layout().workspace_bytes()
        );
    }
}

#[test]
fn winnf_only_supports_3x3_and_5x5_like_cudnn() {
    for f in 2..=9usize {
        let shape = ConvShape::square(2, 32, 8, 8, f);
        let supported = Algo::CuWinNF.supports(&shape, Precision::Fp32);
        assert_eq!(supported, f == 3 || f == 5, "f = {f}");
    }
}
