//! Fail-safe acceptance tests (the robustness contract of the fallback
//! dispatcher):
//!
//! 1. A problem outside the WinRS envelope completes through the GEMM-BFC
//!    fallback, with a report naming exactly why WinRS did not run.
//! 2. A deterministically injected FP16 overflow under `PromoteAndRetry`
//!    is repaired to full FP32 accuracy, re-running *only* the poisoned
//!    buckets.
//! 3. No CLI-reachable invalid input panics: ill-formed shapes and
//!    mismatched tensors come back as typed errors listing every violated
//!    invariant.
//!
//! The fault injector (`winrs_core::faults`) is compiled in via the root
//! package's dev-dependency feature; its state is process-global, so every
//! test that arms it holds `faults::serial_guard()`.

use winrs::conv::{direct, ConvShape};
use winrs::core::fallback::{run_bfc, run_planned, Algorithm, FallbackPolicy, NumericGuard};
use winrs::core::faults;
use winrs::core::{Precision, Violation, WinRsPlan, WinrsError};
use winrs::gpu::RTX_4090;
use winrs::tensor::{mare, Tensor4};

/// Benign random problem: FP32 inputs plus the f64 direct-convolution
/// reference. Magnitudes ~1, so FP16 never overflows *naturally* — any
/// overflow in these tests is the injector's doing.
fn problem(conv: &ConvShape, seed: u64) -> (Tensor4<f32>, Tensor4<f32>, Tensor4<f64>) {
    let x64 = Tensor4::<f64>::random_uniform([conv.n, conv.ih, conv.iw, conv.ic], seed, 1.0);
    let dy64 =
        Tensor4::<f64>::random_uniform([conv.n, conv.oh(), conv.ow(), conv.oc], seed + 1, 1.0);
    let exact = direct::bfc_direct(conv, &x64, &dy64);
    (x64.cast(), dy64.cast(), exact)
}

#[test]
fn unsupported_shape_completes_via_gemm_fallback() {
    // F_W = 4 has no FP16-ported kernel, so the plan is rejected — the
    // dispatcher must still deliver ∇W, via GEMM-BFC, and say why.
    let conv = ConvShape::square(1, 16, 3, 3, 4);
    let (x, dy, exact) = problem(&conv, 11);
    assert!(WinRsPlan::new(&conv, &RTX_4090, Precision::Fp16).is_err());

    let (dw, report) = run_bfc(
        &conv,
        &RTX_4090,
        Precision::Fp16,
        &x,
        &dy,
        FallbackPolicy::Auto,
        NumericGuard::Warn,
    )
    .expect("auto fallback must deliver");
    assert_eq!(report.algorithm, Algorithm::GemmBfc);
    let reason = report.fallback_reason.as_ref().expect("reason recorded");
    assert!(matches!(
        reason.violations()[0],
        Violation::NoReducedPrecisionKernel { fw: 4, .. }
    ));
    assert!(report.summary_line().contains("filter width 4"));
    assert!(mare(&dw, &exact) < 1e-5);
}

#[test]
fn injected_overflow_everywhere_promote_retry_restores_fp32_accuracy() {
    let _g = faults::serial_guard();
    let conv = ConvShape::square(1, 12, 2, 2, 3);
    let (x, dy, exact) = problem(&conv, 21);
    let plan = WinRsPlan::new(&conv, &RTX_4090, Precision::Fp16).expect("in-envelope");
    let num_segments = plan.partition().segments.len();

    // Poison every segment: PromoteAndRetry must re-run every bucket at
    // FP32, so the result carries no FP16 rounding at all.
    faults::arm(0..num_segments);
    let (dw, report) = run_bfc(
        &conv,
        &RTX_4090,
        Precision::Fp16,
        &x,
        &dy,
        FallbackPolicy::Auto,
        NumericGuard::PromoteAndRetry,
    )
    .expect("guarded WinRS run");
    let fired = faults::disarm();

    assert_eq!(fired.len(), num_segments, "every armed segment must fire");
    assert!(report.saturated > 0, "injected 1e30 must saturate binary16");
    assert_eq!(report.algorithm, Algorithm::WinRs);
    assert_eq!(report.promoted_buckets, plan.z(), "all buckets promoted");
    assert_eq!(report.promoted_segments.len(), num_segments);
    assert!(!report.tainted(), "promotion repairs the taint");
    assert!(dw.as_slice().iter().all(|v| v.is_finite()));
    // With every bucket re-run at FP32 the result is a plain FP32 WinRS
    // execution: full accuracy against the f64 direct reference.
    let m = mare(&dw, &exact);
    assert!(m < 1e-5, "MARE {m}");
}

#[test]
fn single_injected_fault_promotes_only_the_poisoned_bucket() {
    let _g = faults::serial_guard();
    let conv = ConvShape::square(2, 16, 4, 4, 3);
    let (x, dy, exact) = problem(&conv, 31);
    // CPU-testable shapes auto-plan to Z = 1 (channels already saturate the
    // modelled GPU), so force a segmented plan and use the cached-plan
    // entry point `run_planned` — exactly what a training loop would do.
    let plan = WinRsPlan::with_z_hat(&conv, &RTX_4090, Precision::Fp16, 6).expect("in-envelope");
    let segments = &plan.partition().segments;
    assert!(plan.z() > 1, "test needs a multi-bucket plan, got Z = 1");

    faults::arm([0usize]);
    let (dw, report) =
        run_planned(&plan, &x, &dy, NumericGuard::PromoteAndRetry).expect("guarded WinRS run");
    let fired = faults::disarm();

    assert_eq!(fired, vec![0], "exactly the armed segment fires");
    assert!(report.saturated > 0);
    // Promotion is bucket-granular: segment 0's bucket re-ran, with its
    // bucket-mates (a band's residual shares its first bulk segment's
    // bucket) — and nothing else.
    assert_eq!(report.promoted_buckets, 1);
    assert!(report.promoted_segments.contains(&0));
    let poisoned_bucket = segments[0].bucket;
    for &s in &report.promoted_segments {
        assert_eq!(
            segments[s].bucket, poisoned_bucket,
            "segment {s} re-ran but lives in a different bucket"
        );
    }
    assert!(
        report.promoted_segments.len() < segments.len(),
        "healthy segments must keep their FP16 results"
    );
    assert!(!report.tainted());
    assert!(dw.as_slice().iter().all(|v| v.is_finite()));
    // The repaired result stays inside the plain FP16 accuracy band.
    let m = mare(&dw, &exact);
    assert!(m < 5e-3, "MARE {m}");
}

#[test]
fn warn_guard_reports_injected_fault_without_repair() {
    let _g = faults::serial_guard();
    let conv = ConvShape::square(1, 12, 2, 2, 3);
    let (x, dy, _) = problem(&conv, 41);

    faults::arm([0usize]);
    let (dw, report) = run_bfc(
        &conv,
        &RTX_4090,
        Precision::Fp16,
        &x,
        &dy,
        FallbackPolicy::Auto,
        NumericGuard::Warn,
    )
    .expect("guarded WinRS run");
    faults::disarm();

    assert!(report.saturated > 0);
    assert_eq!(report.promoted_buckets, 0);
    assert!(report.tainted(), "Warn counts but does not repair");
    // The poison must be visible in the output — Warn never masks it.
    assert!(dw.as_slice().iter().any(|v| !v.is_finite()));
}

#[test]
fn invalid_shape_is_a_typed_error_listing_every_violation() {
    // n = 0, ic = 0 and fw = 0 are all ill-formed. No algorithm can run
    // this, fallback or not: the dispatcher must return InvalidShape
    // naming all three, and must not touch the tensors (so no panic).
    let conv = ConvShape {
        n: 0,
        ih: 8,
        iw: 8,
        ic: 0,
        oc: 2,
        fh: 3,
        fw: 0,
        ph: 1,
        pw: 1,
    };
    let x = Tensor4::<f32>::zeros([1, 8, 8, 1]);
    let dy = Tensor4::<f32>::zeros([1, 8, 8, 2]);
    let err = run_bfc(
        &conv,
        &RTX_4090,
        Precision::Fp32,
        &x,
        &dy,
        FallbackPolicy::Auto,
        NumericGuard::Warn,
    )
    .unwrap_err();
    assert!(matches!(err, WinrsError::InvalidShape(_)));
    assert!(!err.recoverable_by_fallback());
    assert_eq!(err.violations().len(), 3, "{err}");
    let msg = err.to_string();
    for field in ["n", "ic", "fw"] {
        assert!(msg.contains(field), "missing '{field}' in: {msg}");
    }
}

#[test]
fn mismatched_tensors_are_typed_errors_not_panics() {
    let conv = ConvShape::square(1, 8, 2, 2, 3);
    let plan = WinRsPlan::new(&conv, &RTX_4090, Precision::Fp32).expect("in-envelope");
    // Both tensors wrong at once: one error, both named.
    let x = Tensor4::<f32>::zeros([1, 9, 8, 2]);
    let dy = Tensor4::<f32>::zeros([2, 8, 8, 2]);
    let err = plan.execute_f32(&x, &dy).unwrap_err();
    assert!(matches!(err, WinrsError::ExecutionRejected(_)));
    assert_eq!(err.violations().len(), 2, "{err}");
}
