//! Equivalence and bit-identity tests for the vectorised engine hot path
//! (PR 4):
//!
//! 1. The interior fast-path tile loaders (`load_filter_tile` /
//!    `load_input_tile`) must produce *bit-identical* tiles to a scalar
//!    padded-read reference, for border and interior positions, every
//!    precision, and odd block-tail widths.
//! 2. The full FP32 pipeline must produce bit-identical `∇W` with the
//!    explicit-SIMD dispatch forced off and left on auto — the micro-kernel
//!    contract (mul+add, never fmadd; fixed accumulation order) made
//!    observable.
//! 3. The saturation / non-finite health counters must not depend on the
//!    dispatch flavour either, pinned with the deterministic fault
//!    injector.
//!
//! The width pin (`winrs::gemm::micro::force_width`) is process-global, so
//! every test that toggles it serialises on a local mutex (and restores
//! auto dispatch before releasing it). Tests parameterise over *every*
//! width available on the host — scalar, AVX2, AVX-512, NEON — so a
//! single run on wide hardware covers the whole compiled-in family,
//! including odd tails and border tiles.

use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};
use winrs::conv::ConvShape;
use winrs::core::config::pair::select_pair;
use winrs::core::config::segment_shape::calculate;
use winrs::core::engine::{
    execute_segments_with, load_filter_tile, load_input_tile, ExecOptions, HealthSink, TileMode,
    TransformSource,
};
use winrs::core::{faults, Partition, Precision};
use winrs::fp16::{bf16, f16};
use winrs::gemm::micro;
use winrs::tensor::{Scalar, Tensor4};
use winrs::winograd::cook_toom::{Transform, TransformReal};
use winrs::winograd::kernels::KernelId;

/// Serialises tests that flip the global scalar/SIMD dispatch switch.
fn dispatch_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Every micro-kernel width available on this host (always at least
/// `Scalar`), plus `None` for auto dispatch. Pinning any entry must not
/// change a single output bit.
fn pinnable_widths() -> Vec<Option<micro::SimdWidth>> {
    let mut v: Vec<Option<micro::SimdWidth>> = micro::SimdWidth::ALL
        .iter()
        .copied()
        .filter(|w| w.is_available())
        .map(Some)
        .collect();
    v.push(None); // auto: the detected (widest) width
    v
}

/// Scalar reference of the filter-tile load: padded reads, zero-skip, the
/// exact pre-vectorisation loop.
fn ref_filter_tile<T: Scalar>(
    dy: &Tensor4<T>,
    t: &TransformReal,
    b: usize,
    i: usize,
    col0: usize,
    oc0: usize,
    bn_cur: usize,
) -> Vec<f32> {
    let (alpha, r) = (t.alpha, t.r);
    let mut ghat = vec![0.0f32; alpha * bn_cur];
    for tt in 0..r {
        for oc_i in 0..bn_cur {
            let v = dy
                .get_padded(b, i as isize, (col0 + tt) as isize, oc0 + oc_i)
                .to_f32();
            if v != 0.0 {
                for beta in 0..alpha {
                    ghat[beta * bn_cur + oc_i] += t.g_f32[beta * r + tt] * v;
                }
            }
        }
    }
    ghat
}

/// Scalar reference of the input-tile load.
fn ref_input_tile<T: Scalar>(
    x: &Tensor4<T>,
    t: &TransformReal,
    b: usize,
    x_row: isize,
    x_col0: isize,
    ic0: usize,
    bm_cur: usize,
) -> Vec<f32> {
    let alpha = t.alpha;
    let mut dhat = vec![0.0f32; alpha * bm_cur];
    for s in 0..alpha {
        for ic_i in 0..bm_cur {
            let v = x
                .get_padded(b, x_row, x_col0 + s as isize, ic0 + ic_i)
                .to_f32();
            if v != 0.0 {
                for beta in 0..alpha {
                    dhat[beta * bm_cur + ic_i] += t.dt_f32[beta * alpha + s] * v;
                }
            }
        }
    }
    dhat
}

/// Compare the loaders against the reference over every spatial position
/// (interior and border alike) of a small tensor, asserting exact bits.
fn check_loaders<T: Scalar>(n: usize, r: usize, dims: [usize; 4], bn_cur: usize, seed: u64) {
    let t = Transform::generate(n, r).to_real();
    let dy = Tensor4::<T>::random_uniform(dims, seed, 1.0);
    let chans = dims[3];
    let oc0_max = chans - bn_cur;
    let mut ghat = vec![7.5f32; t.alpha * bn_cur]; // dirty, must be overwritten
    for b in 0..dims[0] {
        for i in 0..dims[1] {
            // col0 sweeps past the right edge so both paths are exercised.
            for col0 in 0..dims[2] + 2 {
                for oc0 in [0, oc0_max] {
                    load_filter_tile(&dy, &t, b, i, col0, oc0, bn_cur, &mut ghat);
                    let want = ref_filter_tile(&dy, &t, b, i, col0, oc0, bn_cur);
                    for (k, (g, w)) in ghat.iter().zip(&want).enumerate() {
                        assert_eq!(
                            g.to_bits(),
                            w.to_bits(),
                            "filter tile ({b},{i},{col0},oc0={oc0})[{k}]: {g} vs {w}"
                        );
                    }

                    let mut dhat = vec![-3.25f32; t.alpha * bn_cur];
                    // Signed rows/cols sweep from -2 so the top/left border
                    // (negative coordinates) is covered too.
                    let x_row = i as isize - 2;
                    let x_col0 = col0 as isize - 2;
                    load_input_tile(&dy, &t, b, x_row, x_col0, oc0, bn_cur, &mut dhat);
                    let want = ref_input_tile(&dy, &t, b, x_row, x_col0, oc0, bn_cur);
                    for (k, (d, w)) in dhat.iter().zip(&want).enumerate() {
                        assert_eq!(
                            d.to_bits(),
                            w.to_bits(),
                            "input tile ({b},{x_row},{x_col0},c0={oc0})[{k}]: {d} vs {w}"
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fast-path loaders are bit-identical to the scalar reference for
    /// every kernel geometry, precision, position and odd tail width —
    /// under every compiled-in dispatch width plus auto.
    #[test]
    fn loaders_match_scalar_reference(
        n in 1usize..5,
        r in 2usize..6,
        chans in 1usize..11,
        hw in 4usize..8,
        seed in 0u64..1000,
    ) {
        let _g = dispatch_guard();
        let bn_cur = 1 + (seed as usize) % chans; // odd tails included
        let dims = [2, hw, hw, chans];
        for width in pinnable_widths() {
            micro::force_width(width).expect("available width");
            check_loaders::<f32>(n, r, dims, bn_cur, seed);
            check_loaders::<f16>(n, r, dims, bn_cur, seed.wrapping_add(1));
            check_loaders::<bf16>(n, r, dims, bn_cur, seed.wrapping_add(2));
        }
        micro::force_width(None).expect("auto always pins");
    }
}

struct Plain(std::collections::HashMap<(usize, usize), TransformReal>);
impl TransformSource for Plain {
    fn transform(&self, k: KernelId) -> &TransformReal {
        &self.0[&(k.n, k.r)]
    }
}

fn setup(conv: &ConvShape, z_hat: usize, precision: Precision) -> (Partition, Plain) {
    let pair = select_pair(conv.fw, conv.ow(), precision);
    let seg_shape = calculate(z_hat, conv.oh(), conv.ow(), pair.bulk.r, conv.ph);
    let partition = Partition::build(conv, &pair, seg_shape).expect("valid partition");
    let mut map = std::collections::HashMap::new();
    for k in [Some(pair.bulk), pair.residual].into_iter().flatten() {
        map.entry((k.n, k.r))
            .or_insert_with(|| Transform::generate(k.n, k.r).to_real());
    }
    (partition, Plain(map))
}

/// Run the fused engine once and return the raw bucket buffer.
fn run_buckets(conv: &ConvShape, z_hat: usize, mode: TileMode, seed: u64) -> Vec<f32> {
    let precision = match mode {
        TileMode::Fp16 => Precision::Fp16,
        _ => Precision::Fp32,
    };
    let (partition, src) = setup(conv, z_hat, precision);
    let x = Tensor4::<f32>::random_uniform([conv.n, conv.ih, conv.iw, conv.ic], seed, 1.0);
    let dy = Tensor4::<f32>::random_uniform([conv.n, conv.oh(), conv.ow(), conv.oc], seed + 1, 1.0);
    let mut buckets = vec![0.0f32; partition.z() * conv.dw_elems()];
    execute_segments_with(
        conv,
        &partition,
        &src,
        &x,
        &dy,
        mode,
        &mut buckets,
        ExecOptions::default(),
    )
    .expect("valid arguments");
    buckets
}

/// Acceptance criterion: FP32 `∇W` is bit-identical between forced-scalar
/// dispatch and *every* other width available on the host (AVX2, AVX-512,
/// NEON, plus auto) — across tile modes and across shapes that hit the
/// border fast-path splits (odd O_W phantom padding, no padding, large
/// filters).
#[test]
fn engine_gradients_bit_identical_across_every_width() {
    let _g = dispatch_guard();
    let shapes = [
        ConvShape::new(2, 16, 16, 4, 6, 3, 3, 1, 1),
        ConvShape::new(1, 11, 11, 2, 2, 5, 5, 2, 2), // odd O_W: phantom column
        ConvShape::new(2, 13, 17, 3, 2, 2, 2, 0, 0), // no padding
        ConvShape::new(1, 18, 18, 2, 2, 9, 9, 4, 4), // large filter
    ];
    let widths = pinnable_widths();
    for (si, conv) in shapes.iter().enumerate() {
        for mode in [TileMode::Fp32, TileMode::Fp16, TileMode::Bf16] {
            if mode != TileMode::Fp32 && conv.fw != 3 {
                continue; // reduced-precision kernels are only ported for F_W = 3
            }
            micro::force_width(Some(micro::SimdWidth::Scalar)).expect("scalar always available");
            let scalar = run_buckets(conv, 3, mode, 90 + si as u64);
            for &width in &widths {
                micro::force_width(width).expect("available width");
                let got = run_buckets(conv, 3, mode, 90 + si as u64);
                assert_eq!(scalar.len(), got.len());
                let wname = width.map_or("auto", |w| w.name());
                for (k, (a, b)) in scalar.iter().zip(&got).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "shape {si} mode {mode:?} width {wname} bucket[{k}]: {a} vs {b}"
                    );
                }
            }
        }
    }
    micro::force_width(None).expect("auto always pins");
}

/// Saturation / non-finite counting must be dispatch-invariant: the
/// vectorised OT reduction and the scalar loop see the same values, so the
/// injected fault must produce the *same* counter totals either way.
#[test]
fn fault_injection_counts_identical_scalar_vs_auto_dispatch() {
    let _fg = faults::serial_guard();
    let _dg = dispatch_guard();
    let conv = ConvShape::square(1, 12, 2, 2, 3);
    let (partition, src) = setup(&conv, 2, Precision::Fp16);
    let x = Tensor4::<f32>::random_uniform([conv.n, conv.ih, conv.iw, conv.ic], 7, 1.0);
    let dy = Tensor4::<f32>::random_uniform([conv.n, conv.oh(), conv.ow(), conv.oc], 8, 0.01);

    let run = |force: bool| {
        micro::force_scalar(force);
        faults::arm(0..partition.segments.len());
        let mut buckets = vec![0.0f32; partition.z() * conv.dw_elems()];
        let sink = HealthSink::new(partition.segments.len());
        execute_segments_with(
            &conv,
            &partition,
            &src,
            &x,
            &dy,
            TileMode::Fp16,
            &mut buckets,
            ExecOptions {
                health: Some(&sink),
                ..Default::default()
            },
        )
        .expect("valid arguments");
        let fired = faults::disarm();
        micro::force_scalar(false);
        assert_eq!(
            fired.len(),
            partition.segments.len(),
            "every armed segment must fire"
        );
        sink.totals()
    };

    let (sat_scalar, nonfin_scalar) = run(true);
    let (sat_auto, nonfin_auto) = run(false);
    assert!(sat_scalar > 0, "injected fault must saturate");
    assert!(nonfin_scalar > 0, "saturation must reach the output transform");
    assert_eq!(sat_scalar, sat_auto, "saturation counts diverge");
    assert_eq!(nonfin_scalar, nonfin_auto, "non-finite counts diverge");
}
