//! Scheduler determinism tests (PR 9): the locality-aware work-stealing
//! scheduler must be *invisible* in the output. `∇W` is required to be
//! bitwise-identical
//!
//! 1. across worker counts 1 / 2 / 8 (different queue layouts, different
//!    steal opportunities),
//! 2. across repeated runs at the same worker count (steal interleavings
//!    are timing-dependent and must not matter), and
//! 3. between the scheduler path and the historical flat traversal
//!    (workers = 1 executes the task list in its deterministic build
//!    order).
//!
//! This holds because the scheduler only decides *which worker executes a
//! block group when* — each group owns a disjoint set of bucket rows keyed
//! by its deterministic `(bucket, oc-tile, filter-row)` coordinates, and
//! every row's accumulation order is fixed by the group's internal loops,
//! not by the schedule.

use proptest::prelude::*;
use winrs::conv::ConvShape;
use winrs::core::config::pair::select_pair;
use winrs::core::config::segment_shape::calculate;
use winrs::core::engine::{execute_segments_with, ExecOptions, TileMode, TransformSource};
use winrs::core::{Partition, Precision};
use winrs::tensor::Tensor4;
use winrs::winograd::cook_toom::{Transform, TransformReal};
use winrs::winograd::kernels::KernelId;

struct Plain(std::collections::HashMap<(usize, usize), TransformReal>);
impl TransformSource for Plain {
    fn transform(&self, k: KernelId) -> &TransformReal {
        &self.0[&(k.n, k.r)]
    }
}

fn setup(conv: &ConvShape, z_hat: usize) -> (Partition, Plain) {
    let pair = select_pair(conv.fw, conv.ow(), Precision::Fp32);
    let seg_shape = calculate(z_hat, conv.oh(), conv.ow(), pair.bulk.r, conv.ph);
    let partition = Partition::build(conv, &pair, seg_shape).expect("valid partition");
    let mut map = std::collections::HashMap::new();
    for k in [Some(pair.bulk), pair.residual].into_iter().flatten() {
        map.entry((k.n, k.r))
            .or_insert_with(|| Transform::generate(k.n, k.r).to_real());
    }
    (partition, Plain(map))
}

/// Execute the fused engine with an explicit worker count; return the raw
/// bucket buffer (pre-reduction, so per-bucket placement is visible too).
fn run_with_workers(conv: &ConvShape, z_hat: usize, seed: u64, workers: usize) -> Vec<f32> {
    let (partition, src) = setup(conv, z_hat);
    let x = Tensor4::<f32>::random_uniform([conv.n, conv.ih, conv.iw, conv.ic], seed, 1.0);
    let dy = Tensor4::<f32>::random_uniform([conv.n, conv.oh(), conv.ow(), conv.oc], seed + 1, 1.0);
    let mut buckets = vec![0.0f32; partition.z() * conv.dw_elems()];
    execute_segments_with(
        conv,
        &partition,
        &src,
        &x,
        &dy,
        TileMode::Fp32,
        &mut buckets,
        ExecOptions {
            workers: Some(workers),
            ..Default::default()
        },
    )
    .expect("valid arguments");
    buckets
}

fn assert_bits_equal(want: &[f32], got: &[f32], label: &str) {
    assert_eq!(want.len(), got.len(), "{label}: length diverged");
    for (k, (a, b)) in want.iter().zip(got).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{label} bucket[{k}]: {a} vs {b}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ∇W buckets are bitwise-identical across worker counts 1/2/8 and
    /// across repeated runs, for randomly drawn shapes (border residuals,
    /// odd channel counts, multi-segment partitions included).
    #[test]
    fn gradients_bit_identical_across_worker_counts(
        n in 1usize..3,
        hw in 8usize..17,
        ic in 1usize..5,
        oc in 1usize..7,
        fidx in 0usize..3,
        z_hat in 2usize..5,
        seed in 0u64..1000,
    ) {
        let f = [2usize, 3, 5][fidx];
        prop_assume!(hw > f);
        let conv = ConvShape::new(n, hw, hw, ic, oc, f, f, f / 2, f / 2);
        let baseline = run_with_workers(&conv, z_hat, seed, 1);
        for workers in [2usize, 8] {
            let got = run_with_workers(&conv, z_hat, seed, workers);
            assert_bits_equal(&baseline, &got, &format!("workers={workers}"));
        }
        // Repeated runs at the same worker count: steal interleavings are
        // nondeterministic, the bits must not be.
        for rep in 0..3 {
            let got = run_with_workers(&conv, z_hat, seed, 8);
            assert_bits_equal(&baseline, &got, &format!("workers=8 rep={rep}"));
        }
    }
}

/// A fixed many-task shape (large filter → many filter-row spans, several
/// oc-tiles, several buckets) pushed through every worker count in
/// 1..=8 repeatedly. This is the densest steal-pressure configuration the
/// small-test budget allows: more tasks than workers, unequal group sizes.
#[test]
fn dense_steal_pressure_is_bit_invisible() {
    let conv = ConvShape::new(1, 18, 18, 3, 10, 9, 9, 4, 4);
    let baseline = run_with_workers(&conv, 3, 42, 1);
    for workers in 1..=8usize {
        for rep in 0..2 {
            let got = run_with_workers(&conv, 3, 42, workers);
            assert_bits_equal(
                &baseline,
                &got,
                &format!("dense workers={workers} rep={rep}"),
            );
        }
    }
}

/// `workers: None` (the default) resolves to the scratch-pool default and
/// must agree with any explicit count.
#[test]
fn default_worker_count_matches_explicit() {
    let conv = ConvShape::new(2, 12, 12, 2, 4, 3, 3, 1, 1);
    let (partition, src) = setup(&conv, 2);
    let x = Tensor4::<f32>::random_uniform([conv.n, conv.ih, conv.iw, conv.ic], 5, 1.0);
    let dy = Tensor4::<f32>::random_uniform([conv.n, conv.oh(), conv.ow(), conv.oc], 6, 1.0);
    let mut buckets = vec![0.0f32; partition.z() * conv.dw_elems()];
    execute_segments_with(
        &conv,
        &partition,
        &src,
        &x,
        &dy,
        TileMode::Fp32,
        &mut buckets,
        ExecOptions::default(),
    )
    .expect("valid arguments");
    let explicit = run_with_workers(&conv, 2, 5, 4);
    assert_bits_equal(&explicit, &buckets, "default-vs-explicit");
}
