//! Allocation accounting for the warm execution path — the tentpole's
//! proof obligation: once a `Workspace` is grown to a plan's layout,
//! `run_planned_into` performs zero heap allocations *inside the block
//! loop*.
//!
//! The vendored rayon shim makes a handful of bookkeeping allocations per
//! `par_*` call (it collects items eagerly), so "zero" cannot mean "zero
//! for the whole call". What it does mean, and what this test pins down:
//!
//! 1. the steady-state per-call allocation count is a constant — repeated
//!    warm calls allocate exactly the same amount;
//! 2. that constant is *trip-count independent* — a batch-3 problem runs
//!    3× as many block-loop iterations as batch-1 yet allocates exactly
//!    the same number of times, so the loop body itself allocates nothing;
//! 3. the engine's own witness, `MemoryFootprint::hot_loop_allocs`
//!    (scratch-pool overflows), is zero.
//!
//! This must stay the ONLY test in this file: the `#[global_allocator]`
//! counter is process-wide, and a sibling test on another thread would
//! pollute the counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use winrs::conv::ConvShape;
use winrs::core::fallback::{run_planned_into, NumericGuard};
use winrs::core::{Precision, WinRsPlan, Workspace};
use winrs::gpu::RTX_4090;
use winrs::tensor::Tensor4;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter is the only
// addition and has no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: forwards the caller's contract to `System` unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    // SAFETY: forwards the caller's contract to `System` unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: forwards the caller's contract to `System` unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// One warm guarded execution; returns the allocation count it cost.
fn warm_call(
    plan: &WinRsPlan,
    x: &Tensor4<f32>,
    dy: &Tensor4<f32>,
    ws: &mut Workspace,
    dw: &mut Tensor4<f32>,
) -> u64 {
    let before = allocs();
    let report = run_planned_into(plan, x, dy, NumericGuard::Ignore, ws, dw)
        .expect("in-envelope plan executes");
    assert_eq!(report.mem.hot_loop_allocs, 0, "scratch pool overflowed");
    allocs() - before
}

#[test]
fn warm_run_planned_block_loop_allocates_nothing() {
    // Small single-tile shapes: every `par_*` call in the engine sees one
    // chunk and takes the shim's inline path, so no worker threads (and
    // their stacks) muddy the counts. Ẑ = 1 keeps the bucket region at
    // |∇W| and the whole arena under a page.
    let setup = |n: usize| {
        let conv = ConvShape::new(n, 12, 12, 4, 4, 3, 3, 1, 1);
        let plan =
            WinRsPlan::with_z_hat(&conv, &RTX_4090, Precision::Fp32, 1).expect("in-envelope shape");
        let x = Tensor4::<f32>::random_uniform([conv.n, conv.ih, conv.iw, conv.ic], 3, 1.0);
        let dy = Tensor4::<f32>::random_uniform([conv.n, conv.oh(), conv.ow(), conv.oc], 4, 1.0);
        let dw = Tensor4::<f32>::zeros([conv.oc, conv.fh, conv.fw, conv.ic]);
        (plan, x, dy, dw)
    };

    let (plan1, x1, dy1, mut dw1) = setup(1);
    let (plan3, x3, dy3, mut dw3) = setup(3);
    let mut ws1 = Workspace::new();
    let mut ws3 = Workspace::new();

    // Cold calls: grow the arenas, settle one-time lazy state (layout
    // OnceLock, transform tables).
    warm_call(&plan1, &x1, &dy1, &mut ws1, &mut dw1);
    warm_call(&plan3, &x3, &dy3, &mut ws3, &mut dw3);

    // (1) Steady state: every warm call costs exactly the same.
    let per_call_1: Vec<u64> = (0..3)
        .map(|_| warm_call(&plan1, &x1, &dy1, &mut ws1, &mut dw1))
        .collect();
    assert!(
        per_call_1.windows(2).all(|w| w[0] == w[1]),
        "warm batch-1 calls not steady: {per_call_1:?}"
    );

    // (2) Trip-count independence: 3× the block-loop iterations, same
    // allocation count — the loop body allocates nothing.
    let per_call_3: Vec<u64> = (0..3)
        .map(|_| warm_call(&plan3, &x3, &dy3, &mut ws3, &mut dw3))
        .collect();
    assert!(
        per_call_3.windows(2).all(|w| w[0] == w[1]),
        "warm batch-3 calls not steady: {per_call_3:?}"
    );
    assert_eq!(
        per_call_1[0], per_call_3[0],
        "per-call allocations scale with trip count: batch-1 {} vs batch-3 {}",
        per_call_1[0], per_call_3[0]
    );
}
