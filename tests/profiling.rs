//! Cross-crate observability contract: `ExecutionReport.timing` must be
//! populated on every dispatch path (WinRS, GEMM fallback, forced direct,
//! cached), and the wall-clock phases must account for the total.

use winrs::core::fallback::{run_bfc, run_bfc_cached, ExecutionReport, FallbackPolicy};
use winrs::core::{Algorithm, PlanCache, Precision, Workspace};
use winrs::gpu::RTX_4090;
use winrs::tensor::Tensor4;
use winrs_conv::ConvShape;

fn tensors(shape: &ConvShape, scale: f64) -> (Tensor4<f32>, Tensor4<f32>) {
    let x = Tensor4::<f32>::random_uniform([shape.n, shape.ih, shape.iw, shape.ic], 21, 1.0);
    let dy = Tensor4::<f32>::random_uniform(
        [shape.n, shape.oh(), shape.ow(), shape.oc],
        22,
        scale,
    );
    (x, dy)
}

/// The wall phases are timed as sub-intervals of the total, so their sum
/// (with `other_s` closing the gap) must match the total almost exactly;
/// 10% is the documented acceptance bound.
fn assert_wall_phases_account_for_total(report: &ExecutionReport) {
    let t = &report.timing;
    assert!(t.is_populated(), "timing not populated: {t:?}");
    let sum = t.plan_s + t.block_loop_s + t.promote_s + t.reduce_s + t.other_s();
    assert!(
        (sum - t.total_s).abs() <= 0.10 * t.total_s,
        "phase sum {sum} vs total {} on {}",
        t.total_s,
        report.algorithm.name()
    );
}

#[test]
fn winrs_path_reports_full_phase_breakdown() {
    let shape = ConvShape::square(2, 16, 4, 8, 3);
    let (x, dy) = tensors(&shape, 1.0);
    let (_dw, report) = run_bfc(
        &shape,
        &RTX_4090,
        Precision::Fp32,
        &x,
        &dy,
        FallbackPolicy::default(),
        Default::default(),
    )
    .expect("dispatch");
    assert_eq!(report.algorithm, Algorithm::WinRs);
    assert_wall_phases_account_for_total(&report);
    let t = &report.timing;
    // Default build carries the `metrics` feature: per-block phase data.
    assert!(t.blocks > 0, "engine should count block columns");
    assert!(t.ewmm_s > 0.0 && t.ft_s > 0.0 && t.it_s > 0.0 && t.ot_s > 0.0);
    assert!(t.busy_s >= t.ft_s + t.it_s + t.ewmm_s + t.ot_s);
    assert!(t.utilisation > 0.0 && t.utilisation <= 1.0);
    assert!(t.block_min_s <= t.block_mean_s && t.block_mean_s <= t.block_max_s);
    assert!(report.summary_line().contains(" total="), "{}", report.summary_line());
}

#[test]
fn gemm_fallback_path_reports_timing() {
    // FP16 with F_W = 4 has no ported kernel: the auto policy degrades to
    // GEMM-BFC, whose runtime is charged to the block-loop phase.
    let shape = ConvShape::square(1, 12, 2, 2, 4);
    let (x, dy) = tensors(&shape, 0.01);
    let (_dw, report) = run_bfc(
        &shape,
        &RTX_4090,
        Precision::Fp16,
        &x,
        &dy,
        FallbackPolicy::Auto,
        Default::default(),
    )
    .expect("dispatch");
    assert_eq!(report.algorithm, Algorithm::GemmBfc);
    assert!(report.fallback_reason.is_some());
    assert_wall_phases_account_for_total(&report);
    assert!(report.timing.block_loop_s > 0.0);
}

#[test]
fn forced_direct_path_reports_timing() {
    let shape = ConvShape::square(1, 10, 2, 2, 3);
    let (x, dy) = tensors(&shape, 1.0);
    let (_dw, report) = run_bfc(
        &shape,
        &RTX_4090,
        Precision::Fp32,
        &x,
        &dy,
        FallbackPolicy::Force(Algorithm::Direct),
        Default::default(),
    )
    .expect("dispatch");
    assert_eq!(report.algorithm, Algorithm::Direct);
    assert_wall_phases_account_for_total(&report);
}

#[test]
fn cached_dispatch_reports_timing_and_counters_each_call() {
    let shape = ConvShape::square(1, 16, 2, 4, 3);
    let (x, dy) = tensors(&shape, 1.0);
    let mut cache = PlanCache::new();
    let mut ws = Workspace::new();
    for call in 0..3u64 {
        let (_dw, report) = run_bfc_cached(
            &shape,
            &RTX_4090,
            Precision::Fp32,
            &x,
            &dy,
            FallbackPolicy::default(),
            Default::default(),
            &mut cache,
            &mut ws,
        )
        .expect("dispatch");
        assert_wall_phases_account_for_total(&report);
        assert_eq!((report.cache_hits, report.cache_misses), (call, 1));
    }
    // Warm calls skip planning entirely; the cache makes plan_s ≈ 0 worth
    // asserting structurally via the counters above rather than by time.
    assert_eq!(cache.stats(), (2, 1));
}
