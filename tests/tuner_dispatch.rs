//! Acceptance tests for the cost-model autotuner that owns algorithm
//! dispatch:
//!
//! 1. The cost model is strictly positive on the paper's fig10/fig11
//!    sweep shapes and monotone under dimension doubling — the sanity
//!    floor for trusting it with dispatch decisions.
//! 2. On fig10 FP32 the tuner-dispatched algorithm is never modelled
//!    more than 2% slower than always-WinRS, and is strictly faster on
//!    at least one shape where the model prefers an alternative.
//! 3. A torn (half-written) tuning database — injected by the chaos
//!    harness's `tune-db-torn` site — surfaces as a typed warning and
//!    dispatch continues from the cost model alone; it never panics.
//! 4. The fallback layer is a pure Strict/Auto/Force policy filter: the
//!    substitute it runs under `Auto` is the tuner's best-ranked
//!    non-WinRS candidate, not a hardcoded choice.
//!
//! The fault injector's state is process-global, so the test that arms it
//! holds `faults::serial_guard()`.

use winrs::conv::ConvShape;
use winrs::core::fallback::{run_bfc, FallbackPolicy, NumericGuard};
use winrs::core::faults;
use winrs::core::tuner::{self, device_key, AlgoChoice, TuneDbWarning, TunedEntry, Tuner, TunerConfig};
use winrs::core::Precision;
use winrs::gpu::{RTX_3090, RTX_4090};
use winrs::tensor::Tensor4;
use winrs_bench::throughput_dims;

/// The fig10/fig11 shape sweep: constant-complexity dimension series over
/// filter sizes 3/5/7/9 (fp32 and fp16 are the two figures' precisions).
fn paper_shapes() -> Vec<ConvShape> {
    [3usize, 5, 7, 9]
        .iter()
        .flat_map(|&f| throughput_dims(f))
        .map(|w| w.shape)
        .collect()
}

#[test]
fn cost_model_is_strictly_positive_on_paper_sweeps() {
    for shape in paper_shapes() {
        for device in [&RTX_4090, &RTX_3090] {
            for precision in [Precision::Fp32, Precision::Fp16] {
                let ranked = tuner::rank(&shape, device, precision);
                assert!(!ranked.is_empty(), "{shape:?}: no candidates");
                for c in &ranked {
                    assert!(
                        c.predicted_s > 0.0 && c.predicted_s.is_finite(),
                        "{shape:?} {} {precision:?}: {} predicted {}",
                        device.name,
                        c.algo,
                        c.predicted_s
                    );
                }
            }
        }
    }
}

#[test]
fn cost_model_is_monotone_under_dimension_doubling() {
    // Doubling any one extent of the problem can never make a candidate's
    // modelled time smaller (the work strictly grows).
    let base = ConvShape::square(8, 28, 32, 32, 3);
    let doubled = [
        ("N", ConvShape::square(16, 28, 32, 32, 3)),
        ("H/W", ConvShape::square(8, 56, 32, 32, 3)),
        ("C", ConvShape::square(8, 28, 64, 32, 3)),
        ("K", ConvShape::square(8, 28, 32, 64, 3)),
    ];
    for precision in [Precision::Fp32, Precision::Fp16] {
        let before = tuner::rank(&base, &RTX_4090, precision);
        for (dim, big) in &doubled {
            let after = tuner::rank(big, &RTX_4090, precision);
            for b in &before {
                let Some(a) = after.iter().find(|c| c.algo == b.algo) else {
                    continue;
                };
                assert!(
                    a.predicted_s >= b.predicted_s,
                    "{precision:?} {}: doubling {dim} went {} -> {} s",
                    b.algo,
                    b.predicted_s,
                    a.predicted_s
                );
            }
        }
    }
}

#[test]
fn tuner_dispatch_never_loses_to_always_winrs_on_fig10() {
    let mut t = Tuner::new(TunerConfig {
        capacity: 64,
        ..TunerConfig::default()
    });
    for shape in paper_shapes() {
        let d = t.decide(&shape, &RTX_4090, Precision::Fp32);
        let chosen_s = d.predicted_for(d.chosen).expect("chosen is ranked");
        let winrs_s = d
            .predicted_for(AlgoChoice::WinRs)
            .expect("WinRS viable on every fig10 fp32 shape");
        assert!(
            chosen_s <= 1.02 * winrs_s,
            "{shape:?}: tuner pick {} ({chosen_s} s) loses to WinRS ({winrs_s} s)",
            d.chosen
        );
    }
    // And strictly faster somewhere the model prefers an alternative: the
    // wide-but-shallow f=2 shape from the accuracy sweep.
    let anchor = ConvShape::square(2, 32, 4, 4, 2);
    let d = t.decide(&anchor, &RTX_4090, Precision::Fp32);
    assert_ne!(d.chosen, AlgoChoice::WinRs, "model must prefer a substitute");
    assert!(d.winrs_rejection.is_none(), "WinRS stays viable — pure choice");
    let chosen_s = d.predicted_for(d.chosen).expect("ranked");
    let winrs_s = d.predicted_for(AlgoChoice::WinRs).expect("ranked");
    assert!(
        chosen_s < winrs_s,
        "substitute {} ({chosen_s} s) must beat WinRS ({winrs_s} s)",
        d.chosen
    );
}

#[test]
fn torn_tune_db_warns_and_dispatch_continues() {
    let _g = faults::serial_guard();
    let path = std::env::temp_dir().join(format!(
        "winrs-torn-tune-db-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    let conv = ConvShape::square(2, 16, 4, 4, 3);
    let mut t = Tuner::new(TunerConfig::default());
    assert!(t.attach_db(&path).is_none(), "missing file is not an error");
    let d = t.decide(&conv, &RTX_4090, Precision::Fp32);
    t.db_mut().insert(
        &device_key(&RTX_4090),
        &conv,
        Precision::Fp32,
        TunedEntry {
            algo: d.chosen,
            predicted_s: d.stats.predicted_s,
            measured_s: None,
            trials: 0,
        },
    );

    // Arm the torn-write chaos site: save() emits half a document, as a
    // crash mid-write would.
    faults::arm_sites([faults::Site::TuneDbTorn]);
    t.save().expect("the torn write itself succeeds");
    assert_eq!(faults::disarm_sites(), vec![faults::Site::TuneDbTorn]);
    assert!(
        faults::fired_sites().contains(&faults::Site::TuneDbTorn),
        "the site must actually fire"
    );

    // Reload: the torn file warns (typed, never a panic) and leaves an
    // empty database — dispatch continues from the cost model alone.
    let mut t2 = Tuner::new(TunerConfig::default());
    let warning = t2.attach_db(&path).expect("torn db must warn");
    assert!(matches!(warning, TuneDbWarning::Parse { .. }), "{warning}");
    assert!(t2.db().is_empty());
    let d2 = t2.decide(&conv, &RTX_4090, Precision::Fp32);
    assert_eq!(d2.chosen, d.chosen, "model dispatch unaffected by the tear");
    assert_eq!(t2.counters().db_misses, 1);

    // A clean save repairs the file for the next process.
    t2.db_mut().insert(
        &device_key(&RTX_4090),
        &conv,
        Precision::Fp32,
        TunedEntry {
            algo: d2.chosen,
            predicted_s: d2.stats.predicted_s,
            measured_s: None,
            trials: 0,
        },
    );
    t2.save().expect("clean save");
    let mut t3 = Tuner::new(TunerConfig::default());
    assert!(t3.attach_db(&path).is_none());
    assert_eq!(t3.db().len(), 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn empty_tune_db_warns_once_and_is_repaired_by_next_save() {
    // Regression (PR 8): a zero-byte database file — a crash between
    // `create` and the first write — used to be indistinguishable from a
    // torn document (`TuneDbWarning::Parse`), and the standing warning
    // re-surfaced on every lookup. It is now its own variant, delivered
    // once, and the next successful save repairs the file.
    let _g = faults::serial_guard();
    let path = std::env::temp_dir().join(format!(
        "winrs-empty-tune-db-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let conv = ConvShape::square(2, 16, 4, 4, 3);

    // Arm the empty-write chaos site: save() leaves zero bytes behind.
    let mut t = Tuner::new(TunerConfig::default());
    assert!(t.attach_db(&path).is_none());
    let d = t.decide(&conv, &RTX_4090, Precision::Fp32);
    t.db_mut().insert(
        &device_key(&RTX_4090),
        &conv,
        Precision::Fp32,
        TunedEntry {
            algo: d.chosen,
            predicted_s: d.stats.predicted_s,
            measured_s: None,
            trials: 0,
        },
    );
    faults::arm_sites([faults::Site::TuneDbEmpty]);
    t.save().expect("the empty write itself succeeds");
    assert_eq!(faults::disarm_sites(), vec![faults::Site::TuneDbEmpty]);
    assert_eq!(
        std::fs::metadata(&path).expect("file exists").len(),
        0,
        "the chaos site must leave a zero-byte file"
    );

    // Reload: the dedicated variant, not Parse — and the database loads
    // empty so dispatch continues from the cost model alone.
    let mut t2 = Tuner::new(TunerConfig::default());
    let warning = t2.attach_db(&path).expect("empty db must warn");
    assert!(matches!(warning, TuneDbWarning::Empty { .. }), "{warning}");
    assert!(warning.to_string().contains("empty file"), "{warning}");
    assert!(t2.db().is_empty());

    // Emit-once dedupe: the first poll sees the warning, later per-lookup
    // polls stay silent while the standing warning remains peekable.
    assert!(t2.warning_once().is_some(), "first poll delivers");
    let _ = t2.decide(&conv, &RTX_4090, Precision::Fp32);
    assert!(t2.warning_once().is_none(), "second poll is deduped");
    let _ = t2.decide(&conv, &RTX_4090, Precision::Fp32);
    assert!(t2.warning_once().is_none(), "lookups do not re-arm it");
    assert!(t2.warning().is_some(), "peek still sees the standing warning");

    // The next clean save repairs the file in place and clears the
    // warning; a fresh process loads it without complaint.
    t2.db_mut().insert(
        &device_key(&RTX_4090),
        &conv,
        Precision::Fp32,
        TunedEntry {
            algo: d.chosen,
            predicted_s: d.stats.predicted_s,
            measured_s: None,
            trials: 0,
        },
    );
    t2.save().expect("repairing save");
    assert!(t2.warning().is_none(), "repair clears the standing warning");
    let mut t3 = Tuner::new(TunerConfig::default());
    assert!(t3.attach_db(&path).is_none(), "repaired file loads clean");
    assert_eq!(t3.db().len(), 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fallback_layer_is_a_policy_filter_not_an_orderer() {
    // Source-level: the Auto path derives its substitute from the tuner's
    // ranked candidate list — fallback.rs holds no ordering of its own.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/core/src/fallback.rs");
    let text = std::fs::read_to_string(path).expect("fallback.rs readable");
    assert!(
        text.contains("crate::tuner::rank"),
        "fallback.rs must delegate candidate ordering to the tuner"
    );

    // Behavioural: when WinRS is rejected (no FP16 kernel for F_W = 4),
    // the substitute that actually runs is the tuner's best-ranked
    // non-WinRS candidate.
    let conv = ConvShape::square(1, 16, 3, 3, 4);
    let best_sub = tuner::rank(&conv, &RTX_4090, Precision::Fp16)
        .into_iter()
        .map(|c| c.algo)
        .find(|a| *a != AlgoChoice::WinRs)
        .expect("a substitute always ranks");
    let x = Tensor4::<f32>::random_uniform([conv.n, conv.ih, conv.iw, conv.ic], 31, 1.0);
    let dy = Tensor4::<f32>::random_uniform([conv.n, conv.oh(), conv.ow(), conv.oc], 32, 0.01);
    let (_, report) = run_bfc(
        &conv,
        &RTX_4090,
        Precision::Fp16,
        &x,
        &dy,
        FallbackPolicy::Auto,
        NumericGuard::Warn,
    )
    .expect("auto delivers");
    assert_eq!(report.algorithm, best_sub.algorithm());
    assert_eq!(report.chosen, AlgoChoice::from_algorithm(report.algorithm));
}
