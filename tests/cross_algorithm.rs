//! Integration: every BFC algorithm in the workspace computes the same
//! filter gradients (up to its precision) on shared random problems.

use winrs::conv::{direct, ConvShape};
use winrs::core::{Precision, WinRsPlan};
use winrs::gpu::RTX_4090;
use winrs::tensor::{mare, Tensor4};
use winrs_bench::Algo;

fn problem(shape: &ConvShape, seed: u64) -> (Tensor4<f64>, Tensor4<f64>, Tensor4<f64>) {
    let x = Tensor4::<f64>::random_uniform([shape.n, shape.ih, shape.iw, shape.ic], seed, 1.0);
    let dy = Tensor4::<f64>::random_uniform(
        [shape.n, shape.oh(), shape.ow(), shape.oc],
        seed + 1,
        1.0,
    );
    let exact = direct::bfc_direct(shape, &x, &dy);
    (x, dy, exact)
}

#[test]
fn all_algorithms_agree_on_3x3() {
    let shape = ConvShape::new(2, 12, 14, 3, 4, 3, 3, 1, 1);
    let (x, dy, exact) = problem(&shape, 1000);
    let (x32, dy32) = (x.cast::<f32>(), dy.cast::<f32>());
    for algo in [
        Algo::WinRs,
        Algo::CuAlgo0,
        Algo::CuAlgo1,
        Algo::CuAlgo3,
        Algo::CuFft,
        Algo::CuWinNF,
    ] {
        let dw = algo.execute_f32(&shape, &RTX_4090, &x32, &dy32);
        let m = mare(&dw, &exact);
        assert!(m < 1e-5, "{}: MARE {m}", algo.name());
    }
}

#[test]
fn winrs_handles_every_filter_size_2_to_9() {
    for f in 2..=9usize {
        let shape = ConvShape::square(2, 20, 4, 4, f);
        let (x, dy, exact) = problem(&shape, 2000 + f as u64);
        let plan = WinRsPlan::new(&shape, &RTX_4090, Precision::Fp32).unwrap();
        let dw = plan.execute_f32(&x.cast(), &dy.cast()).unwrap();
        let m = mare(&dw, &exact);
        assert!(m < 1e-4, "f={f}: MARE {m}");
    }
}

#[test]
fn winrs_handles_rectangular_filters_and_maps() {
    // Non-square everything: F_H ≠ F_W, I_H ≠ I_W, asymmetric padding.
    for &(ih, iw, fh, fw, ph, pw) in &[
        (14usize, 18usize, 3usize, 5usize, 1usize, 2usize),
        (11, 16, 2, 3, 1, 1),
        (20, 9, 5, 2, 2, 1),
        (16, 16, 4, 6, 2, 3),
    ] {
        let shape = ConvShape::new(2, ih, iw, 3, 3, fh, fw, ph, pw);
        let (x, dy, exact) = problem(&shape, 3000 + (ih * fw) as u64);
        let plan = WinRsPlan::new(&shape, &RTX_4090, Precision::Fp32).unwrap();
        let dw = plan.execute_f32(&x.cast(), &dy.cast()).unwrap();
        let m = mare(&dw, &exact);
        assert!(m < 1e-4, "{shape:?}: MARE {m}");
    }
}

#[test]
fn winrs_fp16_agrees_with_fp32_loosely() {
    let shape = ConvShape::square(2, 16, 8, 8, 3);
    let x = Tensor4::<f64>::random_uniform([2, 16, 16, 8], 5000, 1.0);
    let dy = Tensor4::<f64>::random_uniform([2, 16, 16, 8], 5001, 0.01);
    let exact = direct::bfc_direct(&shape, &x, &dy);

    let p16 = WinRsPlan::new(&shape, &RTX_4090, Precision::Fp16).unwrap();
    let dw16 = p16.execute_f16(&x.cast(), &dy.cast()).unwrap();
    let m = mare(&dw16, &exact);
    assert!(m > 1e-6 && m < 5e-3, "fp16 MARE {m}");
}

#[test]
fn batch_size_one_works() {
    let shape = ConvShape::square(1, 16, 4, 4, 3);
    let (x, dy, exact) = problem(&shape, 6000);
    let plan = WinRsPlan::new(&shape, &RTX_4090, Precision::Fp32).unwrap();
    let dw = plan.execute_f32(&x.cast(), &dy.cast()).unwrap();
    assert!(mare(&dw, &exact) < 1e-5);
}

#[test]
fn single_channel_works() {
    let shape = ConvShape::new(2, 16, 16, 1, 1, 3, 3, 1, 1);
    let (x, dy, exact) = problem(&shape, 7000);
    let plan = WinRsPlan::new(&shape, &RTX_4090, Precision::Fp32).unwrap();
    let dw = plan.execute_f32(&x.cast(), &dy.cast()).unwrap();
    assert!(mare(&dw, &exact) < 1e-5);
}

#[test]
fn zero_gradients_give_zero_dw() {
    let shape = ConvShape::square(2, 12, 4, 4, 3);
    let x = Tensor4::<f32>::random_uniform([2, 12, 12, 4], 1, 1.0);
    let dy = Tensor4::<f32>::zeros([2, 12, 12, 4]);
    let plan = WinRsPlan::new(&shape, &RTX_4090, Precision::Fp32).unwrap();
    let dw = plan.execute_f32(&x, &dy).unwrap();
    assert!(dw.as_slice().iter().all(|&v| v == 0.0));
}
