//! Property-based tests on the Winograd substrate and the WinRS pipeline:
//! exactness over rationals, linearity, shift structure, and agreement
//! with direct convolution over randomised shapes.

use proptest::prelude::*;
use winrs::conv::{direct, ConvShape};
use winrs::core::{Precision, WinRsPlan};
use winrs::gpu::RTX_4090;
use winrs::rational::{rat, Rational};
use winrs::tensor::{mare, Tensor4};
use winrs::winograd::cook_toom::Transform;
use winrs::winograd::reference;

fn rational_vec(len: usize) -> impl Strategy<Value = Vec<Rational>> {
    prop::collection::vec((-50i128..50, 1i128..6), len)
        .prop_map(|v| v.into_iter().map(|(n, d)| rat(n, d)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cook–Toom transforms compute correlation *exactly* over ℚ, for any
    /// (n, r) in the inventory range and any rational inputs.
    #[test]
    fn cook_toom_is_exact_over_rationals(
        n in 1usize..6,
        r in 1usize..7,
        seed_x in rational_vec(12),
        seed_w in rational_vec(12),
    ) {
        let t = Transform::generate(n, r);
        let x = &seed_x[..t.alpha.min(12)];
        prop_assume!(x.len() == t.alpha);
        let w = &seed_w[..r];
        let got = t.convolve_exact(x, w);
        for (i, g) in got.iter().enumerate() {
            let mut want = Rational::ZERO;
            for (k, &wk) in w.iter().enumerate() {
                want += wk * x[i + k];
            }
            prop_assert_eq!(*g, want);
        }
    }

    /// The f64 Winograd tile is linear in the filter: F(x, a·w1 + b·w2) =
    /// a·F(x, w1) + b·F(x, w2).
    #[test]
    fn winograd_tile_linear_in_filter(
        a in -2.0f64..2.0,
        b in -2.0f64..2.0,
        xs in prop::collection::vec(-1.0f64..1.0, 8),
        w1 in prop::collection::vec(-1.0f64..1.0, 6),
        w2 in prop::collection::vec(-1.0f64..1.0, 6),
    ) {
        let t = Transform::generate(3, 6).to_real();
        let combo: Vec<f64> = w1.iter().zip(&w2).map(|(p, q)| a * p + b * q).collect();
        let y_combo = reference::winograd_tile_1d(&t, &xs, &combo);
        let y1 = reference::winograd_tile_1d(&t, &xs, &w1);
        let y2 = reference::winograd_tile_1d(&t, &xs, &w2);
        for i in 0..3 {
            let want = a * y1[i] + b * y2[i];
            prop_assert!((y_combo[i] - want).abs() < 1e-9,
                "i={} got {} want {}", i, y_combo[i], want);
        }
    }

    /// WinRS matches direct convolution over randomised shapes.
    #[test]
    fn winrs_matches_direct_random_shapes(
        n in 1usize..3,
        res in 8usize..20,
        c in 1usize..5,
        f in 2usize..6,
        seed in 0u64..1000,
    ) {
        prop_assume!(res > f);
        let shape = ConvShape::square(n, res, c, c, f);
        let x = Tensor4::<f64>::random_uniform([n, res, res, c], seed, 1.0);
        let dy = Tensor4::<f64>::random_uniform(
            [n, shape.oh(), shape.ow(), c], seed + 1, 1.0);
        let exact = direct::bfc_direct(&shape, &x, &dy);
        let plan = WinRsPlan::new(&shape, &RTX_4090, Precision::Fp32);
        let dw = plan.execute_f32(&x.cast(), &dy.cast());
        let m = mare(&dw, &exact);
        prop_assert!(m < 1e-4, "{:?}: MARE {}", shape, m);
    }

    /// The workspace invariant: exactly (Z − 1) · |∇W| · elem bytes.
    #[test]
    fn workspace_invariant(
        res in 8usize..64,
        c in 1usize..8,
        f in 2usize..6,
    ) {
        prop_assume!(res > f);
        let shape = ConvShape::square(2, res, 8 * c, 8 * c, f);
        let plan = WinRsPlan::new(&shape, &RTX_4090, Precision::Fp32);
        prop_assert_eq!(
            plan.workspace_bytes(),
            (plan.z() - 1) * shape.dw_elems() * 4
        );
    }

    /// Partition invariant: segments tile ∇Y exactly (plus phantom pad).
    #[test]
    fn partition_tiles_exactly(
        res in 6usize..48,
        f in 2usize..8,
        z in 1usize..40,
    ) {
        prop_assume!(res > f);
        let shape = ConvShape::square(2, res, 8, 8, f);
        let pair = winrs::core::config::pair::select_pair(
            shape.fw, shape.ow(), Precision::Fp32);
        let seg = winrs::core::config::segment_shape::calculate(
            z, shape.oh(), shape.ow(), pair.bulk.r, shape.ph);
        let part = winrs::core::Partition::build(&shape, &pair, seg);
        prop_assert!(
            part.covers_exactly(shape.oh(), shape.ow() + pair.padded_cols),
            "shape {:?} z {} seg {:?}", shape, z, seg
        );
    }
}
