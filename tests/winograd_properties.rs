//! Property-based tests on the Winograd substrate and the WinRS pipeline:
//! exactness over rationals, linearity, shift structure, and agreement
//! with direct convolution over randomised shapes.

use proptest::prelude::*;
use winrs::conv::{direct, ConvShape};
use winrs::core::{Precision, WinRsPlan};
use winrs::gpu::RTX_4090;
use winrs::rational::{rat, Rational};
use winrs::tensor::{mare, Tensor4};
use winrs::winograd::cook_toom::Transform;
use winrs::winograd::reference;

fn rational_vec(len: usize) -> impl Strategy<Value = Vec<Rational>> {
    prop::collection::vec((-50i128..50, 1i128..6), len)
        .prop_map(|v| v.into_iter().map(|(n, d)| rat(n, d)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cook–Toom transforms compute correlation *exactly* over ℚ, for any
    /// (n, r) in the inventory range and any rational inputs.
    #[test]
    fn cook_toom_is_exact_over_rationals(
        n in 1usize..6,
        r in 1usize..7,
        seed_x in rational_vec(12),
        seed_w in rational_vec(12),
    ) {
        let t = Transform::generate(n, r);
        let x = &seed_x[..t.alpha.min(12)];
        prop_assume!(x.len() == t.alpha);
        let w = &seed_w[..r];
        let got = t.convolve_exact(x, w);
        for (i, g) in got.iter().enumerate() {
            let mut want = Rational::ZERO;
            for (k, &wk) in w.iter().enumerate() {
                want += wk * x[i + k];
            }
            prop_assert_eq!(*g, want);
        }
    }

    /// The f64 Winograd tile is linear in the filter: F(x, a·w1 + b·w2) =
    /// a·F(x, w1) + b·F(x, w2).
    #[test]
    fn winograd_tile_linear_in_filter(
        a in -2.0f64..2.0,
        b in -2.0f64..2.0,
        xs in prop::collection::vec(-1.0f64..1.0, 8),
        w1 in prop::collection::vec(-1.0f64..1.0, 6),
        w2 in prop::collection::vec(-1.0f64..1.0, 6),
    ) {
        let t = Transform::generate(3, 6).to_real();
        let combo: Vec<f64> = w1.iter().zip(&w2).map(|(p, q)| a * p + b * q).collect();
        let y_combo = reference::winograd_tile_1d(&t, &xs, &combo);
        let y1 = reference::winograd_tile_1d(&t, &xs, &w1);
        let y2 = reference::winograd_tile_1d(&t, &xs, &w2);
        for i in 0..3 {
            let want = a * y1[i] + b * y2[i];
            prop_assert!((y_combo[i] - want).abs() < 1e-9,
                "i={} got {} want {}", i, y_combo[i], want);
        }
    }

    /// WinRS matches direct convolution over randomised shapes.
    #[test]
    fn winrs_matches_direct_random_shapes(
        n in 1usize..3,
        res in 8usize..20,
        c in 1usize..5,
        f in 2usize..6,
        seed in 0u64..1000,
    ) {
        prop_assume!(res > f);
        let shape = ConvShape::square(n, res, c, c, f);
        let x = Tensor4::<f64>::random_uniform([n, res, res, c], seed, 1.0);
        let dy = Tensor4::<f64>::random_uniform(
            [n, shape.oh(), shape.ow(), c], seed + 1, 1.0);
        let exact = direct::bfc_direct(&shape, &x, &dy);
        let plan = WinRsPlan::new(&shape, &RTX_4090, Precision::Fp32).unwrap();
        let dw = plan.execute_f32(&x.cast(), &dy.cast()).unwrap();
        let m = mare(&dw, &exact);
        prop_assert!(m < 1e-4, "{:?}: MARE {}", shape, m);
    }

    /// The workspace invariant: exactly (Z − 1) · |∇W| · elem bytes.
    #[test]
    fn workspace_invariant(
        res in 8usize..64,
        c in 1usize..8,
        f in 2usize..6,
    ) {
        prop_assume!(res > f);
        let shape = ConvShape::square(2, res, 8 * c, 8 * c, f);
        let plan = WinRsPlan::new(&shape, &RTX_4090, Precision::Fp32).unwrap();
        prop_assert_eq!(
            plan.workspace_bytes(),
            (plan.z() - 1) * shape.dw_elems() * 4
        );
    }

    /// Partition invariant: segments tile ∇Y exactly (plus phantom pad).
    #[test]
    fn partition_tiles_exactly(
        res in 6usize..48,
        f in 2usize..8,
        z in 1usize..40,
    ) {
        prop_assume!(res > f);
        let shape = ConvShape::square(2, res, 8, 8, f);
        let pair = winrs::core::config::pair::select_pair(
            shape.fw, shape.ow(), Precision::Fp32);
        let seg = winrs::core::config::segment_shape::calculate(
            z, shape.oh(), shape.ow(), pair.bulk.r, shape.ph);
        let part = winrs::core::Partition::build(&shape, &pair, seg).unwrap();
        prop_assert!(
            part.covers_exactly(shape.oh(), shape.ow() + pair.padded_cols),
            "shape {:?} z {} seg {:?}", shape, z, seg
        );
    }

    /// Full partition invariant suite over randomised shapes: every
    /// `(row, column)` cell of the padded ∇Y is owned by exactly one
    /// segment, within each launch pass bucket indices are disjoint, and
    /// `z()` equals the number of distinct buckets the segments touch.
    #[test]
    fn partition_invariants_hold(
        res in 6usize..48,
        f in 2usize..8,
        z in 1usize..40,
    ) {
        prop_assume!(res > f);
        let shape = ConvShape::square(2, res, 8, 8, f);
        let pair = winrs::core::config::pair::select_pair(
            shape.fw, shape.ow(), Precision::Fp32);
        let seg = winrs::core::config::segment_shape::calculate(
            z, shape.oh(), shape.ow(), pair.bulk.r, shape.ph);
        // `build` validates internally: a returned partition is sound.
        let part = winrs::core::Partition::build(&shape, &pair, seg).unwrap();

        // Exactly-once coverage, counted cell by cell.
        let padded_ow = shape.ow() + pair.padded_cols;
        let mut owners = vec![0u32; shape.oh() * padded_ow];
        for s in &part.segments {
            for row in s.h0..s.h1 {
                for col in s.w0..s.w0 + s.width() {
                    owners[row * padded_ow + col] += 1;
                }
            }
        }
        prop_assert!(
            owners.iter().all(|&n| n == 1),
            "shape {:?} z {}: some cell covered != once", shape, z
        );

        // Buckets are disjoint within each launch pass and in range.
        for pass in 0..=1u8 {
            let mut seen = std::collections::HashSet::new();
            for s in part.segments.iter().filter(|s| s.pass == pass) {
                prop_assert!(s.bucket < part.z());
                prop_assert!(
                    seen.insert(s.bucket),
                    "bucket {} reused within pass {}", s.bucket, pass
                );
            }
        }

        // Z counts exactly the distinct buckets in use.
        let distinct: std::collections::HashSet<usize> =
            part.segments.iter().map(|s| s.bucket).collect();
        prop_assert_eq!(part.z(), distinct.len());

        // And validate() agrees that nothing is broken.
        prop_assert!(part.validate(&shape, &pair).is_empty());
    }
}

mod clip_edge_cases {
    use winrs::core::engine::{clip_rows, clipped_rows_total};

    /// With `p_H = 0` no ∇Y row falls in padding: clipping must be a
    /// no-op for every filter row.
    #[test]
    fn zero_padding_never_clips() {
        let (ih, fh_total) = (16usize, 5usize);
        let oh = ih - fh_total + 1;
        for fh in 0..fh_total {
            assert_eq!(clip_rows(0, oh, fh, 0, ih), (0, oh));
        }
        assert_eq!(clipped_rows_total(fh_total, oh, 0, ih), fh_total * oh);
    }

    /// A filter taller than the input (valid only through padding, e.g.
    /// 9×9 filters on 4-row maps) must clip to an in-range, possibly
    /// empty row window — never panic or escape the segment.
    #[test]
    fn filter_taller_than_input_clips_to_empty_or_valid() {
        let (ih, fh_total, ph) = (4usize, 9usize, 4usize);
        let oh = ih + 2 * ph - fh_total + 1; // = 4
        let mut kept = 0;
        for fh in 0..fh_total {
            let (lo, hi) = clip_rows(0, oh, fh, ph, ih);
            assert!(lo <= hi, "fh={fh}: inverted range {lo}..{hi}");
            assert!(hi <= oh, "fh={fh}: range escapes the segment");
            // Every surviving row must address a real X row.
            for i in lo..hi {
                let xrow = fh + i - ph;
                assert!((fh + i) >= ph && xrow < ih, "fh={fh} i={i}");
            }
            kept += hi - lo;
        }
        assert_eq!(kept, clipped_rows_total(fh_total, oh, ph, ih));
        // The extreme filter rows read only padding: real work survives
        // for just a fraction of the loop iterations.
        assert!(kept < fh_total * oh);
        assert!(kept > 0);
    }

    /// Segment sub-ranges stay inside `[h0, h1)` even when the whole
    /// segment sits in the padding region.
    #[test]
    fn fully_padded_segment_yields_empty_range() {
        let (lo, hi) = clip_rows(0, 2, 0, 8, 4);
        assert!(lo >= hi, "expected empty range, got {lo}..{hi}");
        let (lo, hi) = clip_rows(3, 7, 2, 3, 64);
        assert!(lo >= 3 && hi <= 7);
    }
}
