//! Edge cases and failure injection across the public API: degenerate
//! shapes, extreme padding, forced mis-use (which must return a typed
//! error naming every violated invariant — never panic, never corrupt
//! results).

use winrs::conv::{direct, ConvShape};
use winrs::core::{Precision, Violation, WinRsPlan, WinrsError};
use winrs::gpu::RTX_4090;
use winrs::tensor::{mare, Tensor4};

fn verify(shape: ConvShape, seed: u64, tol: f64) {
    let x = Tensor4::<f64>::random_uniform([shape.n, shape.ih, shape.iw, shape.ic], seed, 1.0);
    let dy = Tensor4::<f64>::random_uniform(
        [shape.n, shape.oh(), shape.ow(), shape.oc],
        seed + 1,
        1.0,
    );
    let exact = direct::bfc_direct(&shape, &x, &dy);
    let plan = WinRsPlan::new(&shape, &RTX_4090, Precision::Fp32).unwrap();
    let dw = plan.execute_f32(&x.cast(), &dy.cast()).unwrap();
    let m = mare(&dw, &exact);
    assert!(m < tol, "{shape:?}: MARE {m}");
}

#[test]
fn minimal_everything() {
    // 1 batch, 1 channel each way, smallest legal map.
    verify(ConvShape::new(1, 3, 3, 1, 1, 2, 2, 0, 0), 10, 1e-5);
}

#[test]
fn single_output_row_and_column() {
    // O_H = O_W = 1: exactly one output position.
    verify(ConvShape::new(1, 5, 5, 2, 2, 5, 5, 0, 0), 20, 1e-5);
}

#[test]
fn output_width_below_every_unit_width() {
    // O_W = 2 with F_W = 5 (unit widths 4/12/2 … only Ω₂'s r = 2 or padded
    // fits): exercises the narrow-row path.
    verify(ConvShape::new(1, 6, 6, 2, 2, 5, 5, 0, 0), 30, 1e-5);
}

#[test]
fn maximal_padding() {
    // p = F − 1: "full" correlation; most X reads are padding.
    verify(ConvShape::new(1, 6, 6, 1, 1, 3, 3, 2, 2), 40, 1e-4);
}

#[test]
fn very_wide_but_one_row_high() {
    verify(ConvShape::new(1, 2, 64, 2, 2, 2, 2, 0, 0), 50, 1e-5);
}

#[test]
fn very_tall_but_narrow() {
    verify(ConvShape::new(1, 64, 4, 2, 2, 3, 3, 1, 1), 60, 1e-5);
}

#[test]
fn channels_prime_and_mismatched() {
    // I_C = 7, O_C = 11: nothing divides the cache-block tiles.
    verify(ConvShape::new(2, 10, 10, 7, 11, 3, 3, 1, 1), 70, 1e-5);
}

#[test]
fn forced_huge_z_is_clamped_and_correct() {
    let shape = ConvShape::square(2, 16, 4, 4, 3);
    let plan = WinRsPlan::with_z_hat(&shape, &RTX_4090, Precision::Fp32, 1_000_000).unwrap();
    // Segment count is bounded by the geometry (H_max·W_max), not the ask.
    assert!(plan.z() <= 16 * 6);
    let x = Tensor4::<f64>::random_uniform([2, 16, 16, 4], 80, 1.0);
    let dy = Tensor4::<f64>::random_uniform([2, 16, 16, 4], 81, 1.0);
    let exact = direct::bfc_direct(&shape, &x, &dy);
    let dw = plan.execute_f32(&x.cast(), &dy.cast()).unwrap();
    assert!(mare(&dw, &exact) < 1e-5);
}

#[test]
fn fp16_execute_on_fp32_plan_is_a_typed_error() {
    let shape = ConvShape::square(1, 8, 2, 2, 3);
    let plan = WinRsPlan::new(&shape, &RTX_4090, Precision::Fp32).unwrap();
    let x = Tensor4::<winrs::fp16::f16>::zeros([1, 8, 8, 2]);
    let dy = Tensor4::<winrs::fp16::f16>::zeros([1, 8, 8, 2]);
    let err = plan.execute_f16(&x, &dy).unwrap_err();
    assert!(matches!(err, WinrsError::ExecutionRejected(_)));
    assert!(matches!(
        err.violations()[0],
        Violation::PrecisionMismatch { plan: Precision::Fp32, .. }
    ));
}

#[test]
fn wrong_input_shape_is_a_typed_error() {
    let shape = ConvShape::square(1, 8, 2, 2, 3);
    let plan = WinRsPlan::new(&shape, &RTX_4090, Precision::Fp32).unwrap();
    let x = Tensor4::<f32>::zeros([1, 9, 8, 2]); // wrong height
    let dy = Tensor4::<f32>::zeros([1, 8, 8, 2]);
    let err = plan.execute_f32(&x, &dy).unwrap_err();
    assert!(matches!(
        err.violations()[0],
        Violation::TensorDimsMismatch { tensor: "x", .. }
    ));
}

#[test]
fn wrong_gradient_shape_is_a_typed_error() {
    let shape = ConvShape::square(1, 8, 2, 2, 3);
    let plan = WinRsPlan::new(&shape, &RTX_4090, Precision::Fp32).unwrap();
    let x = Tensor4::<f32>::zeros([1, 8, 8, 2]);
    let dy = Tensor4::<f32>::zeros([2, 8, 8, 2]); // wrong batch
    let err = plan.execute_f32(&x, &dy).unwrap_err();
    assert!(matches!(
        err.violations()[0],
        Violation::TensorDimsMismatch { tensor: "dy", .. }
    ));
}

#[test]
fn every_violation_reported_at_once() {
    // Both tensors wrong at the same time: the single error must name both
    // problems so the caller can fix everything in one round trip.
    let shape = ConvShape::square(1, 8, 2, 2, 3);
    let plan = WinRsPlan::new(&shape, &RTX_4090, Precision::Fp32).unwrap();
    let x = Tensor4::<f32>::zeros([1, 9, 8, 2]);
    let dy = Tensor4::<f32>::zeros([2, 8, 8, 2]);
    let err = plan.execute_f32(&x, &dy).unwrap_err();
    assert_eq!(err.violations().len(), 2, "{err}");
}

#[test]
fn plan_reuse_is_deterministic() {
    // Two executions of the same plan on the same data must agree bit-for-
    // bit (rayon order does not affect per-element summation order).
    let shape = ConvShape::square(2, 16, 4, 4, 3);
    let plan = WinRsPlan::new(&shape, &RTX_4090, Precision::Fp32).unwrap();
    let x = Tensor4::<f32>::random_uniform([2, 16, 16, 4], 90, 1.0);
    let dy = Tensor4::<f32>::random_uniform([2, 16, 16, 4], 91, 1.0);
    let a = plan.execute_f32(&x, &dy).unwrap();
    let b = plan.execute_f32(&x, &dy).unwrap();
    assert_eq!(a.as_slice(), b.as_slice());
}

#[test]
fn two_plans_same_shape_agree() {
    let shape = ConvShape::square(2, 16, 4, 4, 3);
    let p1 = WinRsPlan::new(&shape, &RTX_4090, Precision::Fp32).unwrap();
    let p2 = WinRsPlan::new(&shape, &RTX_4090, Precision::Fp32).unwrap();
    let x = Tensor4::<f32>::random_uniform([2, 16, 16, 4], 92, 1.0);
    let dy = Tensor4::<f32>::random_uniform([2, 16, 16, 4], 93, 1.0);
    assert_eq!(
        p1.execute_f32(&x, &dy).unwrap().as_slice(),
        p2.execute_f32(&x, &dy).unwrap().as_slice()
    );
}
