//! End-to-end tests of the batched BFC service: real sockets, real
//! concurrent clients, and gradients checked bit-for-bit against direct
//! library dispatch.
//!
//! Every server binds port 0 (ephemeral) and uses a *private* workspace
//! pool (`slots > 0`) so tests neither collide on a port nor share tuner
//! and plan-cache counters through the process-global pool.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use winrs::conv::ConvShape;
use winrs::core::{ExecHandle, PoolConfig, Precision, WorkspacePool};
use winrs::gpu::RTX_4090;
use winrs::serve::{
    gradient_digest, Client, GradientMode, JobRequest, Reply, ServeConfig, Server,
};

fn fig10_shape() -> ConvShape {
    ConvShape::square(2, 16, 8, 8, 3)
}

fn job(shape: ConvShape, i: u64) -> JobRequest {
    JobRequest {
        shape,
        precision: Precision::Fp32,
        policy: winrs::core::FallbackPolicy::Auto,
        guard: winrs::core::NumericGuard::Warn,
        deadline: None,
        x_seed: 100 + 2 * i,
        dy_seed: 101 + 2 * i,
        scale: 1.0,
        gradient: GradientMode::Digest,
    }
}

/// Reference gradient for `req` via direct library dispatch on an
/// unrelated private pool. The default tuner is pure cost model
/// (`explore_trials = 0`), so a fresh pool reaches the same decision as
/// the server's and the numerics are bitwise reproducible.
fn reference_gradient(req: &JobRequest) -> winrs::tensor::Tensor4<f32> {
    let pool = WorkspacePool::new(PoolConfig {
        slots: 1,
        ..PoolConfig::default()
    });
    let handle = ExecHandle::new(Arc::clone(&pool), RTX_4090, req.precision);
    let (x, dy) = req.operands();
    let (dw, _report) = handle.run(&req.shape, &x, &dy).expect("reference run");
    dw
}

fn spawn_server(window_ms: u64, queue_cap: usize, slots: usize) -> Server {
    Server::spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        window: Duration::from_millis(window_ms),
        queue_cap,
        max_jobs: None,
        slots,
        device: RTX_4090,
    })
    .expect("bind ephemeral port")
}

fn post_all(addr: &str, jobs: Vec<JobRequest>) -> Vec<Result<Reply, String>> {
    let mut handles = Vec::new();
    for req in jobs {
        let addr = addr.to_string();
        handles.push(thread::spawn(move || Client::new(&addr).post_job(&req)));
    }
    handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect()
}

#[test]
fn concurrent_same_shape_jobs_coalesce_and_match_library_bitwise() {
    let server = spawn_server(120, 64, 2);
    let addr = server.addr().to_string();

    const JOBS: u64 = 6;
    let requests: Vec<JobRequest> = (0..JOBS)
        .map(|i| {
            let mut r = job(fig10_shape(), i);
            r.gradient = GradientMode::Full;
            r
        })
        .collect();
    let replies = post_all(&addr, requests.clone());

    for (req, reply) in requests.iter().zip(&replies) {
        let reply = reply.as_ref().expect("transport");
        assert_eq!(reply.status, 200, "body: {}", reply.body.to_document());
        let expected = reference_gradient(req);

        let gradient = reply.body.get("gradient").expect("gradient object");
        let dims: Vec<usize> = gradient
            .get("dims")
            .and_then(|d| d.items())
            .expect("dims array")
            .iter()
            .map(|v| v.as_f64().expect("dim") as usize)
            .collect();
        assert_eq!(dims, expected.dims().to_vec());
        let values = gradient
            .get("values")
            .and_then(|v| v.items())
            .expect("full gradient values");
        assert_eq!(values.len(), expected.len());
        for (served, local) in values.iter().zip(expected.as_slice()) {
            let served = served.as_f64().expect("gradient value") as f32;
            assert_eq!(
                served.to_bits(),
                local.to_bits(),
                "served gradient diverged from direct library dispatch"
            );
        }
    }

    // All six arrived inside the 120 ms window, so the dispatcher must
    // have coalesced at least once (the counter the issue demands).
    let st = server.stats();
    use std::sync::atomic::Ordering::Relaxed;
    assert_eq!(st.jobs_ok.load(Relaxed), JOBS);
    assert_eq!(st.jobs_failed.load(Relaxed), 0);
    assert!(
        st.coalesced_batches.load(Relaxed) >= 1,
        "expected >= 1 coalesced batch, got stats {}",
        server.stats_json().to_document()
    );
    assert!(st.max_batch.load(Relaxed) >= 2);
}

#[test]
fn mixed_shape_jobs_split_into_per_key_batches_and_all_succeed() {
    let server = spawn_server(80, 64, 2);
    let addr = server.addr().to_string();

    let small = ConvShape::square(1, 12, 4, 4, 3);
    let mut requests = Vec::new();
    for i in 0..3 {
        requests.push(job(fig10_shape(), 10 + i));
        requests.push(job(small, 20 + i));
    }
    let replies = post_all(&addr, requests.clone());

    for (req, reply) in requests.iter().zip(&replies) {
        let reply = reply.as_ref().expect("transport");
        assert_eq!(reply.status, 200, "body: {}", reply.body.to_document());
        let expected = reference_gradient(req);
        let digest = reply
            .body
            .get("gradient")
            .and_then(|g| g.get("fnv1a64"))
            .and_then(|d| d.as_str())
            .expect("digest");
        assert_eq!(
            digest,
            gradient_digest(&expected),
            "digest mismatch for shape {:?}",
            req.shape
        );
    }

    use std::sync::atomic::Ordering::Relaxed;
    let st = server.stats();
    assert_eq!(st.jobs_ok.load(Relaxed), 6);
    // Two distinct keys can never travel in one batch.
    assert!(st.batches.load(Relaxed) >= 2);
}

#[test]
fn queue_overflow_answers_429_with_retry_after() {
    // One-slot queue and a long window: the first admitted job parks in
    // the queue for the whole window while the rest bounce off the cap.
    let server = spawn_server(400, 1, 1);
    let addr = server.addr().to_string();

    let replies = post_all(&addr, (0..6).map(|i| job(fig10_shape(), 40 + i)).collect());

    let mut ok = 0;
    let mut rejected = 0;
    for reply in &replies {
        let reply = reply.as_ref().expect("transport");
        match reply.status {
            200 => ok += 1,
            429 => {
                rejected += 1;
                assert_eq!(
                    reply.retry_after,
                    Some(1),
                    "429 must carry Retry-After, body: {}",
                    reply.body.to_document()
                );
                let kind = reply.body.get("kind").and_then(|k| k.as_str());
                assert_eq!(kind, Some("queue-full"));
            }
            other => panic!("unexpected status {other}: {}", reply.body.to_document()),
        }
    }
    assert!(ok >= 1, "the admitted job must still complete");
    assert!(rejected >= 1, "the cap must refuse at least one job");

    use std::sync::atomic::Ordering::Relaxed;
    assert_eq!(
        server.stats().rejected_queue_full.load(Relaxed),
        rejected as u64
    );
}

#[test]
fn expired_deadline_maps_to_http_504_with_the_typed_kind() {
    let server = spawn_server(5, 16, 1);
    let addr = server.addr().to_string();

    let mut req = job(fig10_shape(), 60);
    req.deadline = Some(Duration::ZERO);
    let reply = Client::new(&addr).post_job(&req).expect("transport");
    assert_eq!(reply.status, 504, "body: {}", reply.body.to_document());
    assert_eq!(
        reply.body.get("kind").and_then(|k| k.as_str()),
        Some("deadline-exceeded")
    );
}

#[test]
fn invalid_shape_maps_to_http_400_naming_the_field() {
    let server = spawn_server(5, 16, 1);
    let addr = server.addr().to_string();

    // Hand-written body with a zero channel count: rejected at parse
    // time with the shape violation in the message.
    let client = Client::new(&addr);
    let body = r#"{"shape": {"n":1, "ih":8, "iw":8, "ic":0, "oc":4, "fh":3, "fw":3}}"#;
    let parsed = winrs::json::Json::parse(body).expect("literal JSON");
    let err = JobRequest::from_json(&parsed).expect_err("zero ic must be refused");
    assert!(err.contains("ic"), "{err}");

    // And the HTTP layer reports schema violations as 400 bad-request.
    let reply = client.get("/nope").expect("transport");
    assert_eq!(reply.status, 404);
}

#[test]
fn health_and_stats_endpoints_expose_pool_and_tuner_counters() {
    let server = spawn_server(5, 16, 1);
    let addr = server.addr().to_string();
    let client = Client::new(&addr);

    let health = client.get("/healthz").expect("transport");
    assert_eq!(health.status, 200);

    let reply = client.post_job(&job(fig10_shape(), 70)).expect("transport");
    assert_eq!(reply.status, 200);
    // The success body carries the execution report with pool counters.
    let report = reply.body.get("report").expect("report object");
    assert_eq!(
        report.get("algorithm").and_then(|a| a.as_str()),
        Some("winrs")
    );
    assert!(report.get("pool").is_some(), "report must embed pool stats");

    let stats = client.get("/v1/stats").expect("transport");
    assert_eq!(stats.status, 200);
    for key in ["server", "pool", "plan_cache", "tuner"] {
        assert!(
            stats.body.get(key).is_some(),
            "missing `{key}` in {}",
            stats.body.to_document()
        );
    }
    let leases = stats
        .body
        .get("pool")
        .and_then(|p| p.get("leases"))
        .and_then(|l| l.as_f64())
        .expect("lease counter");
    assert!(leases >= 1.0, "the job above must have leased a workspace");

    let method = client.get("/v1/bfc").expect("transport");
    assert_eq!(method.status, 405);
}

#[test]
fn max_jobs_budget_drains_then_the_server_stops_cleanly() {
    let mut server = Server::spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        window: Duration::from_millis(5),
        queue_cap: 16,
        max_jobs: Some(2),
        slots: 1,
        device: RTX_4090,
    })
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    let replies = post_all(&addr, (0..2).map(|i| job(fig10_shape(), 80 + i)).collect());
    for reply in &replies {
        assert_eq!(reply.as_ref().expect("transport").status, 200);
    }

    // The budget is drained: join() must return promptly instead of
    // serving forever.
    let joined = thread::spawn(move || {
        server.join();
        server
    });
    let server = joined.join().expect("join thread");
    use std::sync::atomic::Ordering::Relaxed;
    assert_eq!(server.stats().completed.load(Relaxed), 2);

    // The listener is gone; a new job cannot be submitted.
    assert!(Client::new(&addr).post_job(&job(fig10_shape(), 99)).is_err());
}
