//! Property-based tests on the substrate crates, exercised through the
//! façade: rational field behaviour, binary16 rounding laws, FFT analysis
//! identities, and GEMM consistency.

use proptest::prelude::*;
use winrs::fft::{fft_arbitrary, Complex};
use winrs::fp16::{bf16, f16};
use winrs::gemm::{gemm_f32, gemm_generic};
use winrs::rational::{rat, Rational};

fn small_rational() -> impl Strategy<Value = Rational> {
    (-200i128..200, 1i128..20).prop_map(|(n, d)| rat(n, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---- rational: field axioms -------------------------------------

    #[test]
    fn rational_addition_commutes_and_associates(
        a in small_rational(), b in small_rational(), c in small_rational()
    ) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn rational_distributivity(
        a in small_rational(), b in small_rational(), c in small_rational()
    ) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn rational_multiplicative_inverse(a in small_rational()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a * a.recip(), Rational::ONE);
    }

    #[test]
    fn rational_to_f64_is_monotone(a in small_rational(), b in small_rational()) {
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
    }

    // ---- binary16: rounding laws ------------------------------------

    #[test]
    fn f16_roundtrip_is_idempotent(bits in 0u16..=0xFFFFu16) {
        let h = f16::from_bits(bits);
        if !h.is_nan() {
            prop_assert_eq!(f16::from_f32(h.to_f32()).to_bits(), bits);
        }
    }

    #[test]
    fn f16_rounding_is_nearest(x in -60000.0f32..60000.0) {
        // |x − round(x)| must be within half a ulp of the result.
        let h = f16::from_f32(x);
        let back = h.to_f32();
        // ulp at the result's magnitude.
        let exp = back.abs().max(2.0f32.powi(-14)).log2().floor() as i32;
        let ulp = 2.0f32.powf((exp - 10) as f32);
        prop_assert!(
            (x - back).abs() <= ulp / 2.0 + f32::EPSILON * x.abs(),
            "x={x} -> {back}, ulp={ulp}"
        );
    }

    #[test]
    fn f16_ordering_preserved(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
        let (ha, hb) = (f16::from_f32(a), f16::from_f32(b));
        if ha < hb {
            prop_assert!(a < b);
        }
    }

    #[test]
    fn f16_negation_is_exact(x in -60000.0f32..60000.0) {
        prop_assert_eq!((-f16::from_f32(x)).to_f32(), f16::from_f32(-x).to_f32());
    }

    #[test]
    fn bf16_roundtrip_is_idempotent(bits in 0u16..=0xFFFFu16) {
        let b = bf16::from_bits(bits);
        if !b.is_nan() {
            prop_assert_eq!(bf16::from_f32(b.to_f32()).to_bits(), bits);
        }
    }

    #[test]
    fn bf16_error_bounded_by_relative_epsilon(x in -1.0e30f32..1.0e30) {
        let b = bf16::from_f32(x);
        prop_assert!((b.to_f32() - x).abs() <= x.abs() * 2.0f32.powi(-8));
    }

    // ---- FFT: analysis identities -----------------------------------

    #[test]
    fn fft_is_linear(
        n in 2usize..40,
        a in -2.0f64..2.0,
        seed in 0u64..100,
    ) {
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new(((seed + i as u64) as f64).sin(), (i as f64).cos()))
            .collect();
        let y: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.7).cos(), ((seed + i as u64) as f64).sin()))
            .collect();
        let combo: Vec<Complex> = x.iter().zip(&y).map(|(&p, &q)| p.scale(a) + q).collect();
        let f_combo = fft_arbitrary(&combo, false);
        let fx = fft_arbitrary(&x, false);
        let fy = fft_arbitrary(&y, false);
        for k in 0..n {
            let want = fx[k].scale(a) + fy[k];
            prop_assert!((f_combo[k] - want).abs() < 1e-7);
        }
    }

    #[test]
    fn fft_parseval(n in 2usize..60, seed in 0u64..100) {
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new(((seed * 3 + i as u64) as f64).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let fx = fft_arbitrary(&x, false);
        let time_energy: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let freq_energy: f64 = fx.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time_energy - freq_energy).abs() < 1e-7 * time_energy.max(1.0));
    }

    #[test]
    fn fft_inverse_is_left_inverse(n in 1usize..50, seed in 0u64..50) {
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((seed as f64 + i as f64).sin(), 0.25 * i as f64))
            .collect();
        let back = fft_arbitrary(&fft_arbitrary(&x, false), true);
        for k in 0..n {
            prop_assert!((back[k] - x[k]).abs() < 1e-8);
        }
    }

    // ---- TensorN: layout laws ----------------------------------------

    #[test]
    fn tensorn_offset_is_bijective(
        d0 in 1usize..4, d1 in 1usize..5, d2 in 1usize..5, d3 in 1usize..4
    ) {
        use winrs::tensor::TensorN;
        let t = TensorN::<f32>::zeros(&[d0, d1, d2, d3]);
        let mut seen = std::collections::HashSet::new();
        for i0 in 0..d0 {
            for i1 in 0..d1 {
                for i2 in 0..d2 {
                    for i3 in 0..d3 {
                        let off = t.offset(&[i0, i1, i2, i3]);
                        prop_assert!(off < t.len());
                        prop_assert!(seen.insert(off), "collision at {off}");
                    }
                }
            }
        }
    }

    #[test]
    fn fp8_e4m3_roundtrip_within_grid(bits in 0u8..=0xFFu8) {
        use winrs::fp16::e4m3;
        let v = e4m3::from_bits(bits);
        if !v.is_nan() {
            prop_assert_eq!(e4m3::from_f32(v.to_f32()).to_bits(), bits);
        }
    }

    // ---- GEMM: blocked kernel vs reference --------------------------

    #[test]
    fn gemm_blocked_matches_reference(
        m in 1usize..20,
        n in 1usize..20,
        k in 1usize..30,
        seed in 0u64..100,
    ) {
        let a: Vec<f32> = (0..m * k)
            .map(|i| (((seed + i as u64) * 2654435761) % 1000) as f32 / 500.0 - 1.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| (((seed + 7 + i as u64) * 2246822519) % 1000) as f32 / 500.0 - 1.0)
            .collect();
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        gemm_f32(m, n, k, 1.0, &a, &b, 0.0, &mut c1);
        gemm_generic(m, n, k, 1.0f32, &a, &b, 0.0, &mut c2);
        for i in 0..m * n {
            prop_assert!((c1[i] - c2[i]).abs() < 1e-4 * (k as f32));
        }
    }
}
