#!/usr/bin/env bash
# Regenerate every table and figure of the paper plus the extension
# experiments, writing outputs under bench_results/.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p bench_results

BINS=(
  fig01_shapes fig02_blocks fig03_workflow fig05_pairs fig06_kernels
  fig08_matrices tab02_workspace fig09_workspace tab03_speedup
  fig10_throughput_fp32 fig11_throughput_fp16 tab04_accuracy fig12_mare
  fig13_training claim_flop_reduction ablations accuracy_analysis
  model_sweep
)

cargo build --release -p winrs-bench --bins
for bin in "${BINS[@]}"; do
  echo "== $bin =="
  ./target/release/"$bin" | tee "bench_results/$bin.txt"
  echo
done
echo "All outputs in bench_results/"
