#!/usr/bin/env bash
# Workspace CI gate. Offline-safe: every external dependency is vendored as a
# path dependency (see [workspace.dependencies] in Cargo.toml), so no step
# touches the network or a registry.
#
#   1. release build of every workspace target
#   2. full test suite (unit + integration + property + doc tests)
#   3. clippy with warnings promoted to errors — including the
#      `unwrap_used = "deny"` fail-safe lint on library crates
#   4. workspace-accounting smoke test: the CLI's layout breakdown must
#      match the paper formula and a guarded execution must report a
#      zero-allocation hot loop
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy (all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> workspace accounting smoke (reference shape 32x56x56, 16->16, f=3)"
WINRS=target/release/winrs
REF_SHAPE=(--n 32 --res 56 --ic 16 --oc 16 --f 3)
"$WINRS" workspace "${REF_SHAPE[@]}" | tee /dev/stderr \
  | grep -q "overflow check : matches"
"$WINRS" verify "${REF_SHAPE[@]}" | tee /dev/stderr \
  | grep -q "hot_loop_allocs=0"

echo "CI OK"
