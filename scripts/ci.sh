#!/usr/bin/env bash
# Workspace CI gate. Offline-safe: every external dependency is vendored as a
# path dependency (see [workspace.dependencies] in Cargo.toml), so no step
# touches the network or a registry.
#
#   1. release build of every workspace target
#   2. full test suite (unit + integration + property + doc tests)
#   3. clippy with warnings promoted to errors — including the
#      `unwrap_used = "deny"` fail-safe lint on library crates
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy (all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
