#!/usr/bin/env bash
# Workspace CI gate. Offline-safe: every external dependency is vendored as a
# path dependency (see [workspace.dependencies] in Cargo.toml), so no step
# touches the network or a registry.
#
#   1. release build of every workspace target
#   2. full test suite (unit + integration + property + doc tests), the
#      no-default / explicit-SIMD feature legs, the width + scheduler
#      bit-identity acceptance tests, a WINRS_FORCE_WIDTH matrix replay
#      over every width available on the host, and a compile-only
#      aarch64 (NEON) cross-check when that stdlib is installed
#   3. clippy with warnings promoted to errors — including the
#      `unwrap_used = "deny"` fail-safe lint on library crates
#   4. workspace-accounting smoke test: the CLI's layout breakdown must
#      match the paper formula and a guarded execution must report a
#      zero-allocation hot loop
#   5. profiling smoke test: `winrs profile` must print the per-phase
#      breakdown with a warm plan cache, and the bench harness's --json
#      baseline must carry the winrs-bench-v1 schema and phase fields
#   6. autotuner smoke test: a cold `winrs tune --shapes fig10 --dry-run`
#      must print the full 32-row decision table from the cost model alone,
#      and a `--db` run must persist a winrs-tune-v1 database that
#      round-trips through `--inspect`
#   7. serve smoke: `winrs serve` on an ephemeral port answers a raw
#      `POST /v1/bfc` with 200 + a well-formed ExecutionReport, serves one
#      `winrs loadgen` job with zero failures, and shuts itself down
#      cleanly (exit 0) once its `--max-jobs` budget drains — DESIGN.md §13
#   8. `cargo xtask audit`: the workspace's own invariant lints (hot-loop
#      allocation ban, unsafe registry + SAFETY comments, atomic-ordering
#      justifications, bit-identity FMA ban, error hygiene) with clickable
#      file:line:col diagnostics — see DESIGN.md §10
#   9. loom concurrency models: exhaustive interleaving checks of
#      TimingSink / ScratchPool / PlanCache / the leasing WorkspacePool
#      under `--cfg loom`, built in a separate target dir so the cfg flag
#      doesn't thrash the cache
#  10. seeded chaos campaigns: deterministic fault injection (hot-loop
#      panic, slot exhaustion, allocation-budget refusal, deadline-blowing
#      slowness) against the resilient pool layer, on every feature leg,
#      plus a `winrs verify --fault-seed` replay smoke — DESIGN.md §11
#      (the torn tuning-db site is exercised by tests/tuner_dispatch.rs
#      in step 2)
#  11. sanitizer jobs (gated): Miri smoke on the pure-arithmetic crates
#      and a ThreadSanitizer pass over the loom-modelled types, each
#      skipped with a notice when the toolchain component is unavailable
#      (this offline image ships neither)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> feature matrix: engine + gemm without default features"
cargo test -q -p winrs-core -p winrs-gemm --no-default-features

echo "==> feature matrix: engine + gemm with explicit SIMD micro-kernels"
cargo test -q -p winrs-core -p winrs-gemm --features winrs-core/simd,winrs-gemm/simd

echo "==> scalar/SIMD bit-identity acceptance test (root package, --features simd)"
cargo test -q --test engine_simd --features simd

echo "==> scheduler determinism acceptance test (workers 1/2/8, repeated runs)"
cargo test -q --test engine_sched --features simd

echo "==> forced-width matrix (WINRS_FORCE_WIDTH over every available width)"
# `winrs simd` reports per-width availability on this host; replay the
# scheduler determinism suite under each pin. The env override re-applies
# on every engine entry, so the whole suite runs at exactly that width.
AVAILABLE_WIDTHS=$(cargo run -q -p winrs-cli --features simd -- simd | awk '$3 == "yes" { print $1 }')
for W in $AVAILABLE_WIDTHS; do
  echo "    width: $W"
  WINRS_FORCE_WIDTH=$W cargo test -q --test engine_sched --features simd
done
# An unknown token must be a typed hard error, never a silent fallback.
if WINRS_FORCE_WIDTH=avx1024 cargo run -q -p winrs-cli --features simd -- \
     verify --n 1 --res 8 --ic 2 --oc 2 --f 3 >/dev/null 2>&1; then
  echo "forced-width matrix: junk WINRS_FORCE_WIDTH was silently accepted"; exit 1
fi

echo "==> aarch64 cross-check (compile-only: NEON member of the width family)"
# The offline image may ship only the host stdlib; skip gracefully then.
AARCH64_LIBDIR=$(rustc --print target-libdir --target aarch64-unknown-linux-gnu 2>/dev/null || true)
if [ -n "$AARCH64_LIBDIR" ] && [ -d "$AARCH64_LIBDIR" ]; then
  CARGO_TARGET_DIR=target/aarch64 cargo check -q -p winrs-gemm -p winrs-core \
    --features winrs-gemm/simd,winrs-core/simd --target aarch64-unknown-linux-gnu
else
  echo "    aarch64-unknown-linux-gnu stdlib not installed; skipping cross-check"
fi

echo "==> cargo clippy (all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> workspace accounting smoke (reference shape 32x56x56, 16->16, f=3)"
WINRS=target/release/winrs
REF_SHAPE=(--n 32 --res 56 --ic 16 --oc 16 --f 3)
"$WINRS" workspace "${REF_SHAPE[@]}" | tee /dev/stderr \
  | grep -q "overflow check : matches"
"$WINRS" verify "${REF_SHAPE[@]}" | tee /dev/stderr \
  | grep -q "hot_loop_allocs=0"

echo "==> profiling smoke (winrs profile + phase-baseline JSON schema)"
PROFILE_OUT=$("$WINRS" profile --n 1 --res 16 --ic 4 --oc 8 --f 3 --trips 3)
echo "$PROFILE_OUT" >&2
echo "$PROFILE_OUT" | grep -q "wall-clock phases"
echo "$PROFILE_OUT" | grep -Eq "plan-cache   : 2 hits / 1 misses"
echo "$PROFILE_OUT" | grep -q "total"
# The named wall phases must account for the total (`other` closes the gap
# by construction; 10% slack absorbs the 3-decimal print rounding).
echo "$PROFILE_OUT" | awk '
  $1 ~ /^(plan|block-loop|promote|reduce|other)$/ && $2+0 == $2 { sum += $2 }
  $1 == "total" && $2+0 == $2 { total = $2 }
  END {
    if (total <= 0) { print "profile smoke: no total row"; exit 1 }
    d = sum - total; if (d < 0) d = -d
    if (d > 0.1 * total + 0.01) {
      printf "profile smoke: phases %.3f ms != total %.3f ms\n", sum, total
      exit 1
    }
  }'

echo "==> autotuner smoke (winrs tune decision table + winrs-tune-v1 schema)"
# Cold run: no database on disk, so every row must resolve from the cost
# model alone. fig10 is 8 dimension-series shapes x filter sizes {3,5,7,9}.
TUNE_OUT=$("$WINRS" tune --shapes fig10 --dry-run)
echo "$TUNE_OUT" >&2
echo "$TUNE_OUT" | grep -q "schema      : winrs-tune-v1"
echo "$TUNE_OUT" | grep -q "chosen"
[ "$(echo "$TUNE_OUT" | grep -c " model$")" -eq 32 ] \
  || { echo "tuner smoke: expected 32 model-resolved fig10 rows"; exit 1; }
# Persistence round-trip: write the small sweep's decisions, check the
# on-disk schema token, and read the file back through --inspect.
TUNE_DB=$(mktemp -t winrs-ci-tune-XXXXXX.json)
trap 'rm -f "$TUNE_DB"' EXIT
"$WINRS" tune --shapes small --db "$TUNE_DB" | grep -q "wrote 24 entries"
grep -q '"schema":"winrs-tune-v1"' "$TUNE_DB"
"$WINRS" tune --db "$TUNE_DB" --inspect | tee /dev/stderr \
  | grep -q "24 entries, schema winrs-tune-v1"
rm -f "$TUNE_DB"

echo "==> serve smoke (batched BFC service: POST /v1/bfc end-to-end)"
# Start the service on an ephemeral port with a 2-job budget: one raw
# HTTP POST (bash /dev/tcp — the image ships no curl) plus one job from
# the official load generator drain the budget, after which the server
# must shut itself down cleanly (exit 0) — the leak-free teardown check.
SERVE_ADDR_FILE=$(mktemp -t winrs-ci-serve-XXXXXX.addr)
: > "$SERVE_ADDR_FILE"
"$WINRS" serve --port 0 --addr-file "$SERVE_ADDR_FILE" --max-jobs 2 --window-ms 1 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$SERVE_ADDR_FILE" ] && break; sleep 0.05; done
[ -s "$SERVE_ADDR_FILE" ] || { echo "serve smoke: server never bound"; exit 1; }
SERVE_HOST=$(cut -d: -f1 "$SERVE_ADDR_FILE")
SERVE_PORT=$(cut -d: -f2 "$SERVE_ADDR_FILE")
# One fig10 job over raw HTTP: must answer 200 with a well-formed
# ExecutionReport (algorithm, timing, pool counters, summary line).
SERVE_BODY='{"shape": {"n":2, "ih":16, "iw":16, "ic":8, "oc":8, "fh":3, "fw":3}}'
exec 3<>"/dev/tcp/$SERVE_HOST/$SERVE_PORT"
printf 'POST /v1/bfc HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' \
  "$SERVE_HOST" "${#SERVE_BODY}" "$SERVE_BODY" >&3
SERVE_OUT=$(cat <&3)
exec 3<&- 3>&-
echo "$SERVE_OUT" | head -1 >&2
echo "$SERVE_OUT" | grep -q "HTTP/1.1 200 OK"
echo "$SERVE_OUT" | grep -q '"ok":true'
echo "$SERVE_OUT" | grep -q '"algorithm":"winrs"'
echo "$SERVE_OUT" | grep -q '"total_s":'
echo "$SERVE_OUT" | grep -q '"pool":'
echo "$SERVE_OUT" | grep -q '"summary":'
echo "$SERVE_OUT" | grep -q '"fnv1a64":'
# Second job through the official client; its exit code asserts zero
# failed jobs, which also drains the server's budget.
"$WINRS" loadgen --addr "$SERVE_HOST:$SERVE_PORT" --jobs 1 --concurrency 1 >&2
# Clean self-stop: the server must exit 0 on its own, no kill needed.
wait "$SERVE_PID"
rm -f "$SERVE_ADDR_FILE"

echo "==> cargo xtask audit (custom invariant lints + unsafe inventory)"
cargo xtask audit

echo "==> loom concurrency models (TimingSink / ScratchPool / PlanCache / WorkspacePool)"
# Separate target dir: --cfg loom changes every crate's fingerprint, and
# sharing target/ would force a full rebuild of the normal profile next run.
RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom \
  cargo test -q -p winrs-core --test loom_models --test pool_models --release

echo "==> seeded chaos campaigns (panic / exhaustion / alloc-budget / deadline)"
# Fixed seeds inside the suite make every failure replayable from one u64.
# The resilience contract must hold on every feature leg: default, no
# default features, and SIMD dispatch.
cargo test -q -p winrs-core --features faults --test chaos
cargo test -q -p winrs-core --no-default-features --features faults --test chaos
cargo test -q -p winrs-core --features faults,simd --test chaos
# CLI replay smoke: campaign seed 6 injects a hot-loop panic; the verify
# must contain it (typed degradation, poison+rebuild) and stay green.
"$WINRS" verify --n 1 --res 16 --ic 4 --oc 4 --f 3 --fault-seed 6 2>/dev/null \
  | tee /dev/stderr | grep -q "fired     : \[hot-loop-panic\]"
"$WINRS" verify --n 1 --res 16 --ic 4 --oc 4 --f 3 --fault-seed 6 2>/dev/null \
  | tee /dev/stderr | grep -q "poisonings=1 rebuilds=1"

echo "==> miri smoke (winrs-fp16 + winrs-rational, skipped if unavailable)"
# Miri exercises the bit-twiddling conversion kernels for UB; it needs the
# rustup `miri` component + nightly, which the offline image does not ship.
if cargo miri --version >/dev/null 2>&1; then
  # Isolated target dir for the same fingerprint reason as the loom job.
  CARGO_TARGET_DIR=target/miri cargo miri test -q -p winrs-fp16 -p winrs-rational
else
  echo "    miri not installed; skipping (install the rustup component to enable)"
fi

echo "==> thread sanitizer (loom-modelled types, skipped if unavailable)"
# TSan needs -Z sanitizer (nightly) plus a rebuilt std (rust-src / -Z
# build-std), neither of which is available offline. When present, it runs
# the same loom_models scenarios against the real std::sync types.
if rustc +nightly --version >/dev/null 2>&1 \
   && rustc +nightly --print target-libdir 2>/dev/null | grep -q . \
   && [ -d "$(rustc +nightly --print sysroot)/lib/rustlib/src/rust/library" ]; then
  RUSTFLAGS="-Zsanitizer=thread" CARGO_TARGET_DIR=target/tsan \
    cargo +nightly test -q -p winrs-core --lib metrics -Z build-std \
    --target "$(rustc -vV | sed -n 's/^host: //p')"
else
  echo "    nightly rust-src not installed; skipping TSan job"
fi

BASELINE=bench_results/phase_baseline.json
target/release/phase_baseline --json >/dev/null
if command -v jq >/dev/null 2>&1; then
  jq -e '.schema == "winrs-bench-v1"
         and (.results | length >= 1)
         and (.results[0] | has("total_ms") and has("ewmm_ms")
              and has("cache_hits"))' "$BASELINE" >/dev/null
else
  # jq-free schema check: the emitter writes compact single-line JSON, so
  # fixed-string greps on the key tokens are reliable.
  grep -q '"schema":"winrs-bench-v1"' "$BASELINE"
  grep -q '"total_ms":' "$BASELINE"
  grep -q '"ewmm_ms":' "$BASELINE"
  grep -q '"cache_hits":' "$BASELINE"
fi

echo "CI OK"
