//! Large-kernel CNNs: WinRS across filter sizes 2×2 … 9×9.
//!
//! The paper's conclusion notes WinRS's advantage grows with filter size,
//! "aligning with the current trend towards larger filters" (ConvNeXt,
//! RepLKNet, …). This example sweeps the filter size on a fixed layer,
//! reporting the selected kernels, FLOP reduction, workspace, modelled
//! speedup over GEMM — and verifying numerics at every size.
//!
//! ```sh
//! cargo run --release --example large_filter_sweep
//! ```

use winrs::conv::{direct, ConvShape};
use winrs::core::{Precision, WinRsPlan};
use winrs::gpu::RTX_4090;
use winrs::tensor::{mare, Tensor4};
use winrs_bench::cu_gemm_best;

fn main() {
    println!("filter  pair                     FLOP cut  Z   workspace  modelled speedup  MARE");
    println!("{}", "-".repeat(95));
    for f in 2..=9usize {
        // Model-scale shape for costs…
        let model_shape = ConvShape::square(32, 56, 128, 128, f);
        let plan = WinRsPlan::new(&model_shape, &RTX_4090, Precision::Fp32)
            .expect("model shape is inside the WinRS envelope");
        let gemm = cu_gemm_best(&model_shape, &RTX_4090, Precision::Fp32);
        let speedup = gemm.time / plan.estimated_time();

        // …and an executable shape for numerics.
        let exec_shape = ConvShape::square(2, 24, 8, 8, f);
        let exec_plan = WinRsPlan::new(&exec_shape, &RTX_4090, Precision::Fp32)
            .expect("exec shape is inside the WinRS envelope");
        let x = Tensor4::<f64>::random_uniform(
            [exec_shape.n, exec_shape.ih, exec_shape.iw, exec_shape.ic],
            10 + f as u64,
            1.0,
        );
        let dy = Tensor4::<f64>::random_uniform(
            [exec_shape.n, exec_shape.oh(), exec_shape.ow(), exec_shape.oc],
            20 + f as u64,
            1.0,
        );
        let dw = exec_plan
            .execute_f32(&x.cast(), &dy.cast())
            .expect("FP32 plan accepts FP32 tensors");
        let exact = direct::bfc_direct(&exec_shape, &x, &dy);

        println!(
            "{f}x{f}     {:24} {:>6.2}x  {:>2}  {:>7.1} MB  {:>14.2}x  {:.1e}",
            format!(
                "{} + {}",
                plan.pair().bulk,
                plan.pair()
                    .residual
                    .map_or("-".to_string(), |k| k.to_string())
            ),
            plan.flop_reduction(),
            plan.z(),
            plan.workspace_bytes() as f64 / 1e6,
            speedup,
            mare(&dw, &exact),
        );
    }
    println!(
        "\nLarger filters -> bigger Winograd tiles (alpha = 16) -> larger FLOP\n\
         reduction and speedup, at identical workspace scaling."
    );
}
