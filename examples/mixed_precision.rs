//! The FP16 Tensor-Core path: mixed-precision transforms, scaling matrices
//! for α = 16, loss-scaling, and what each piece buys numerically.
//!
//! ```sh
//! cargo run --release --example mixed_precision
//! ```

use winrs::conv::{direct, ConvShape};
use winrs::core::{Precision, WinRsPlan};
use winrs::fp16::f16;
use winrs::gpu::RTX_4090;
use winrs::tensor::{mare, Tensor4};
use winrs::winograd::cook_toom::Transform;
use winrs::winograd::scaling::ScaledTransform;

fn main() {
    // --- Part 1: why Ω16 needs scaling matrices ------------------------
    println!("Part 1 — the Omega_16 dynamic-range problem (paper section 5.2, Eq. 7)\n");
    let t = Transform::generate(8, 9);
    let real = t.to_real();
    let g_max = real.g_f64.iter().fold(0.0f64, |m, x| m.max(x.abs()));
    println!("F(8,9): largest |G| element = {g_max:.1} (binary16 max finite = 65504)");
    let overflow: Vec<f64> = real
        .g_f64
        .iter()
        .copied()
        .filter(|x| x.abs() > 65504.0)
        .collect();
    println!("         elements that overflow binary16 outright: {}", overflow.len());

    let s = ScaledTransform::from_transform(&t);
    let sg_max = s.real.g_f64.iter().fold(0.0f64, |m, x| m.max(x.abs()));
    println!("After row-L1 scaling: largest |G_s G| element = {sg_max:.3}");
    println!(
        "A_s compensation spans {:.1e} .. {:.1e}, applied in FP32 during the OT.\n",
        s.a_scale.iter().fold(f64::INFINITY, |m, &x| m.min(x.abs())),
        s.a_scale.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    );

    // --- Part 2: end-to-end FP16 accuracy ------------------------------
    println!("Part 2 — FP16 BFC accuracy with the full pipeline\n");
    let shape = ConvShape::square(2, 24, 8, 8, 3);
    let x64 = Tensor4::<f64>::random_uniform([2, 24, 24, 8], 1, 1.0);
    // Paper protocol: scale ∇Y by 1e-2 for FP16 to avoid overflow.
    let dy64 = Tensor4::<f64>::random_uniform([2, 24, 24, 8], 2, 0.01);
    let exact = direct::bfc_direct(&shape, &x64, &dy64);

    let plan32 =
        WinRsPlan::new(&shape, &RTX_4090, Precision::Fp32).expect("3x3 FP32 is in-envelope");
    let plan16 =
        WinRsPlan::new(&shape, &RTX_4090, Precision::Fp16).expect("3x3 FP16 is in-envelope");
    let dw32 = plan32
        .execute_f32(&x64.cast(), &dy64.cast())
        .expect("FP32 plan accepts FP32 tensors");
    let dw16 = plan16
        .execute_f16(&x64.cast::<f16>(), &dy64.cast::<f16>())
        .expect("FP16 plan accepts FP16 tensors");
    println!("FP32 WinRS MARE: {:.3e}", mare(&dw32, &exact));
    println!("FP16 WinRS MARE: {:.3e}", mare(&dw16, &exact));
    println!(
        "Input rounding alone costs ~2^-11 = {:.1e}; the FP16 pipeline stays\n\
         within a small multiple of that thanks to FP32 transforms, FP32\n\
         accumulation and the Kahan bucket reduction.\n",
        2.0f64.powi(-11)
    );

    // --- Part 2b: the FP8 porting target --------------------------------
    println!("Part 2b — FP8 (E4M3) tile quantisation, the conclusion's final target\n");
    let dw8 = plan16
        .execute_fp8(&x64.cast(), &dy64.cast())
        .expect("FP8 rides the FP16 plan");
    println!("FP8  WinRS MARE: {:.3e}", mare(&dw8, &exact));
    println!(
        "E4M3 keeps 3 mantissa bits (eps = 2^-3): an order of magnitude coarser\n\
         than FP16, usable in the FP8-training recipe where master weights stay\n\
         wide and gradients tolerate noise.\n"
    );

    // --- Part 3: modelled Tensor-Core speedup --------------------------
    println!("Part 3 — modelled FP16 speedup (paper: 3.27x average)\n");
    let big = ConvShape::square(32, 56, 256, 256, 3);
    let t32 = WinRsPlan::new(&big, &RTX_4090, Precision::Fp32)
        .expect("in-envelope")
        .estimated_time();
    let t16 = WinRsPlan::new(&big, &RTX_4090, Precision::Fp16)
        .expect("in-envelope")
        .estimated_time();
    println!(
        "RTX 4090, 56x56x256, 3x3: FP32 {:.3} ms -> FP16 {:.3} ms = {:.2}x",
        t32 * 1e3,
        t16 * 1e3,
        t32 / t16
    );
}
