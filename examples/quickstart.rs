//! Quickstart: compute filter gradients with WinRS and verify them against
//! direct convolution.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use winrs::conv::{direct, ConvShape};
use winrs::core::{Precision, WinRsPlan, WinrsError};
use winrs::gpu::RTX_4090;
use winrs::tensor::{mare, Tensor4};

fn main() -> Result<(), WinrsError> {
    // A conv layer: batch 4, 32×32 feature maps, 16→16 channels, 3×3
    // filters, "same" padding.
    let shape = ConvShape::square(4, 32, 16, 16, 3);
    println!("BFC problem: {shape:?}");
    println!(
        "  output gradients (the 'filter'): {}x{}, filter gradients (the 'output'): {}x{}",
        shape.oh(),
        shape.ow(),
        shape.fh,
        shape.fw
    );

    // 1. Plan: kernel-pair selection + Algorithms 1 & 2 + partitioning.
    // Plan construction validates the problem and reports *every* violated
    // invariant at once if the shape is outside the WinRS envelope.
    let plan = WinRsPlan::new(&shape, &RTX_4090, Precision::Fp32)?;
    println!("\nWinRS configuration:");
    println!("  kernel pair : {:?}", plan.pair());
    println!("  segments Z  : {}", plan.z());
    println!("  workspace   : {} bytes", plan.workspace_bytes());
    println!("  FLOP cut    : {:.2}x over direct convolution", plan.flop_reduction());

    // 2. Execute on real data.
    let x = Tensor4::<f32>::random_uniform([shape.n, shape.ih, shape.iw, shape.ic], 1, 1.0);
    let dy = Tensor4::<f32>::random_uniform([shape.n, shape.oh(), shape.ow(), shape.oc], 2, 1.0);
    let dw = plan.execute_f32(&x, &dy)?;

    // 3. Verify against the direct definition in f64.
    let exact = direct::bfc_direct(&shape, &x.cast::<f64>(), &dy.cast::<f64>());
    println!("\nMARE vs f64 direct convolution: {:.3e}", mare(&dw, &exact));
    println!("dW[0,0,0,0] = {}", dw[(0, 0, 0, 0)]);
    Ok(())
}
