//! N-dimensional BFC: the paper's Level-2 extension on a 3D convolution
//! (video / volumetric workloads).
//!
//! ```sh
//! cargo run --release --example conv3d
//! ```

use winrs::conv::ndim::{bfc3d_direct, Conv3dShape};
use winrs::core::ndim::bfc3d_winrs;
use winrs::tensor::{mare_n, TensorN};

fn main() {
    println!("3D backward-filter convolution via WinRS dimension reduction\n");

    for (label, shape) in [
        ("video 3x3x3", Conv3dShape::cube(1, 8, 4, 4, 3)),
        ("video 2x2x2", Conv3dShape::cube(2, 6, 2, 4, 2)),
        (
            "anisotropic 2x3x3",
            Conv3dShape {
                n: 1,
                id: 5,
                ih: 10,
                iw: 12,
                ic: 2,
                oc: 3,
                fd: 2,
                fh: 3,
                fw: 3,
                pd: 1,
                ph: 1,
                pw: 1,
            },
        ),
    ] {
        let x = TensorN::<f64>::random_uniform(&shape.x_dims(), 11, 1.0);
        let dy = TensorN::<f64>::random_uniform(&shape.dy_dims(), 12, 1.0);
        let exact = bfc3d_direct(&shape, &x, &dy);
        let got = bfc3d_winrs(&shape, &x.cast(), &dy.cast());
        println!(
            "{label:<18} dW {:?}  direct FLOPs {:>10}  MARE vs f64 direct: {:.2e}",
            shape.dw_dims(),
            shape.bfc_flops(),
            mare_n(&got, &exact)
        );
    }
    println!(
        "\nThe same machinery as 2D — each (o_d, o_h) row of the output\n\
         gradients is a 1D filter, split into hybrid units, convolved with\n\
         F(n, r) and accumulated — with clipping generalised to both outer\n\
         spatial axes (paper section 3, Level 2)."
    );
}
