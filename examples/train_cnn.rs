//! Train a small CNN with WinRS computing the filter gradients — the
//! Figure 13 experiment as a runnable example.
//!
//! ```sh
//! cargo run --release --example train_cnn
//! ```

use winrs::nn::model::Backend;
use winrs::nn::{train, TrainConfig};

fn main() {
    let cfg = TrainConfig {
        res: 8,
        channels: 1,
        filters: 4,
        classes: 4,
        batch: 8,
        steps: 80,
        lr: 0.05,
        noise: 0.1,
        seed: 2024,
        device: winrs::gpu::RTX_4090,
    };
    println!(
        "Training a conv-relu-pool x2 + linear CNN on a {}-class synthetic task\n",
        cfg.classes
    );

    for backend in [Backend::Direct, Backend::WinRsFp32, Backend::WinRsFp16] {
        let report = match train(&cfg, backend) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("{backend:?}: training failed: {err}");
                continue;
            }
        };
        let first = report.losses[0];
        let last10: f32 =
            report.losses[report.losses.len() - 10..].iter().sum::<f32>() / 10.0;
        println!(
            "{:?}: loss {:.4} -> {:.4}, held-out accuracy {:.1}%",
            backend,
            first,
            last10,
            100.0 * report.final_accuracy
        );
    }
    println!(
        "\nAll three backends share data and initialisation; matching curves\n\
         demonstrate WinRS gradients are drop-in for training (paper §6.3)."
    );
}
