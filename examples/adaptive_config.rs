//! Explore WinRS's adaptive configuration: how the kernel pair, segment
//! count and workspace react to the layer shape and the target GPU.
//!
//! ```sh
//! cargo run --release --example adaptive_config
//! ```

use winrs::conv::ConvShape;
use winrs::core::{Precision, WinRsPlan};
use winrs::gpu::{DeviceSpec, A5000, L40S, RTX_3090, RTX_4090};

fn show(label: &str, shape: &ConvShape, device: &DeviceSpec) {
    let plan = WinRsPlan::new(shape, device, Precision::Fp32)
        .expect("sweep shapes are inside the WinRS envelope");
    let c = plan.segment_count_plan();
    println!(
        "{label:<28} {:<10} pair {:<22} b2 {:>5}  Z {:>3}  ws {:>8.2} MB  cut {:.2}x",
        device.name,
        format!(
            "{}+{}",
            plan.pair().bulk,
            plan.pair()
                .residual
                .map_or("-".to_string(), |k| k.to_string())
        ),
        c.b2,
        plan.z(),
        plan.workspace_bytes() as f64 / 1e6,
        plan.flop_reduction(),
    );
}

fn main() {
    println!("How WinRS adapts to the problem and the hardware\n");

    println!("-- channel size sweep (224x224 -> 14x14 walk, 3x3 filters, RTX 4090) --");
    for &(res, c) in &[(224usize, 64usize), (112, 128), (56, 256), (28, 512), (14, 1024)] {
        let shape = ConvShape::square(32, res, c, c, 3);
        show(&format!("{res}x{res} maps, {c} channels"), &shape, &RTX_4090);
    }

    println!("\n-- filter size sweep (56x56 maps, 128 channels, RTX 4090) --");
    for f in [2usize, 3, 5, 7, 9] {
        let shape = ConvShape::square(32, 56, 128, 128, f);
        show(&format!("{f}x{f} filters"), &shape, &RTX_4090);
    }

    println!("\n-- device sweep (VGG16 conv2: more SMs need more segments) --");
    let shape = ConvShape::vgg16_conv2(32);
    for device in [&A5000, &RTX_3090, &RTX_4090, &L40S] {
        show(
            &format!("VGG16 conv2 ({} SMs)", device.n_sm),
            &shape,
            device,
        );
    }

    println!(
        "\nNote the two adaptive levers: the *kernel pair* tracks the filter\n\
         width (bigger F_W -> bigger tiles) and the *segment count* tracks\n\
         blocks-per-launch vs the SM count (fewer blocks or more SMs -> more\n\
         segments, until channels provide parallelism for free)."
    );
}
