#![warn(missing_docs)]
//! # WinRS
//!
//! A Rust reproduction of *"WinRS: Accelerate Winograd Backward-Filter
//! Convolution with Tiny Workspace"* (ICPP 2025).
//!
//! This façade crate re-exports the full public API of the workspace:
//!
//! * [`core`] — the WinRS algorithm itself: adaptive configuration, ∇Y
//!   segmentation, fused 1D-Winograd kernels and bucket reduction.
//! * [`conv`] — direct/GEMM/FFT/non-fused-Winograd baseline BFC algorithms.
//! * [`winograd`] — Cook–Toom transform generation and reference Winograd
//!   convolutions.
//! * [`tensor`], [`fp16`] — NHWC tensors and software half-precision floats.
//! * [`fft`], [`gemm`] — FFT and GEMM substrates used by the baselines.
//! * [`gpu`] — the analytic GPU performance model used to regenerate the
//!   paper's throughput experiments.
//! * [`nn`] — a minimal CNN training substrate for the convergence study.
//! * [`serve`] — batched BFC-as-a-service: an HTTP/JSON front end with a
//!   coalescing dispatcher and bounded-queue backpressure over the shared
//!   workspace pool.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory; each table and figure of the paper has a regeneration binary
//! in the `winrs-bench` crate.

pub use winrs_conv as conv;
pub use winrs_json as json;
pub use winrs_core as core;
pub use winrs_fft as fft;
pub use winrs_fp16 as fp16;
pub use winrs_gemm as gemm;
pub use winrs_gpu_sim as gpu;
pub use winrs_nn as nn;
pub use winrs_rational as rational;
pub use winrs_serve as serve;
pub use winrs_tensor as tensor;
pub use winrs_winograd as winograd;

/// Crate version of the façade, for examples that print provenance.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
